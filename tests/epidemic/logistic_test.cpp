#include "epidemic/logistic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace dq::epidemic {
namespace {

TEST(Logistic, FractionAtZero) {
  // f(0) = 1/(c+1).
  EXPECT_DOUBLE_EQ(logistic_fraction(0.5, 3.0, 0.0), 0.25);
}

TEST(Logistic, ApproachesOne) {
  EXPECT_NEAR(logistic_fraction(1.0, 99.0, 50.0), 1.0, 1e-9);
}

TEST(Logistic, StableForHugeExponents) {
  EXPECT_DOUBLE_EQ(logistic_fraction(10.0, 999.0, 1000.0), 1.0);
  EXPECT_NEAR(logistic_fraction(10.0, 999.0, -1000.0), 0.0, 1e-12);
}

TEST(Logistic, ConstantFromInitialFraction) {
  EXPECT_DOUBLE_EQ(logistic_constant(0.001), 999.0);
  EXPECT_DOUBLE_EQ(logistic_constant(0.5), 1.0);
  EXPECT_THROW(logistic_constant(0.0), std::invalid_argument);
  EXPECT_THROW(logistic_constant(1.0), std::invalid_argument);
}

TEST(Logistic, TimeToLevelInvertsFraction) {
  const double lambda = 0.8, c = 999.0;
  for (double level : {0.1, 0.5, 0.9}) {
    const double t = logistic_time_to_level(lambda, c, level);
    EXPECT_NEAR(logistic_fraction(lambda, c, t), level, 1e-12);
  }
}

TEST(Logistic, TimeToLevelMatchesPaperShorthand) {
  // Paper Eq. (2): t ≈ ln(α)/β for low initial infection. With c = N-1
  // and α·N target hosts, the exact form reduces to it when α is small.
  const double beta = 0.8;
  const double n = 1e6;
  const double c = n - 1.0;
  const double alpha_hosts = 1000.0;
  const double exact =
      logistic_time_to_level(beta, c, alpha_hosts / n);
  EXPECT_NEAR(exact, std::log(alpha_hosts) / beta, 0.01);
}

TEST(Logistic, TimeToLevelValidation) {
  EXPECT_THROW(logistic_time_to_level(0.0, 9.0, 0.5), std::invalid_argument);
  EXPECT_THROW(logistic_time_to_level(1.0, 9.0, 0.0), std::invalid_argument);
  EXPECT_THROW(logistic_time_to_level(1.0, 9.0, 1.0), std::invalid_argument);
}

TEST(Logistic, CurveSamples) {
  const auto ys = logistic_curve(1.0, 1.0, {0.0, 100.0});
  ASSERT_EQ(ys.size(), 2u);
  EXPECT_DOUBLE_EQ(ys[0], 0.5);
  EXPECT_NEAR(ys[1], 1.0, 1e-12);
}

TEST(Logistic, MonotoneIncreasingInTime) {
  double prev = 0.0;
  for (double t = -10.0; t <= 10.0; t += 0.5) {
    const double f = logistic_fraction(0.7, 42.0, t);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

}  // namespace
}  // namespace dq::epidemic
