#include "epidemic/partial_deployment.hpp"

#include <gtest/gtest.h>

#include "epidemic/si_model.hpp"

namespace dq::epidemic {
namespace {

PartialDeploymentParams params(double q) {
  PartialDeploymentParams p;
  p.population = 1000.0;
  p.deployed_fraction = q;
  p.unfiltered_rate = 0.8;
  p.filtered_rate = 0.01;
  p.initial_infected = 1.0;
  return p;
}

TEST(PartialDeployment, Validation) {
  EXPECT_THROW(PartialDeploymentModel{params(-0.1)}, std::invalid_argument);
  EXPECT_THROW(PartialDeploymentModel{params(1.1)}, std::invalid_argument);
  PartialDeploymentParams bad = params(0.5);
  bad.filtered_rate = 1.0;  // filter must not raise the rate
  EXPECT_THROW(PartialDeploymentModel{bad}, std::invalid_argument);
}

TEST(PartialDeployment, GrowthRateLaw) {
  // λ = qβ₂ + (1−q)β₁ — Equation (3)'s solution.
  const PartialDeploymentModel model(params(0.3));
  EXPECT_DOUBLE_EQ(model.growth_rate(), 0.3 * 0.01 + 0.7 * 0.8);
}

TEST(PartialDeployment, ZeroDeploymentReducesToHomogeneousSi) {
  const PartialDeploymentModel model(params(0.0));
  SiParams sp;
  sp.population = 1000.0;
  sp.contact_rate = 0.8;
  sp.initial_infected = 1.0;
  const HomogeneousSi si(sp);
  for (double t : {0.0, 5.0, 10.0, 20.0})
    EXPECT_NEAR(model.fraction_at(t), si.fraction_at(t), 1e-12);
}

TEST(PartialDeployment, FullDeploymentUsesFilteredRate) {
  const PartialDeploymentModel model(params(1.0));
  EXPECT_DOUBLE_EQ(model.growth_rate(), 0.01);
}

TEST(PartialDeployment, ClosedFormMatchesIntegration) {
  const PartialDeploymentModel model(params(0.5));
  const std::vector<double> grid = uniform_grid(0.0, 40.0, 41);
  const TimeSeries closed = model.closed_form(grid);
  const TimeSeries numeric = model.integrate(grid);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_NEAR(closed.value_at(i), numeric.value_at(i), 1e-6);
}

TEST(PartialDeployment, SlowdownFactorNearlyLinear) {
  // With β₂ << β₁, slowdown ≈ 1/(1−q) — the paper's headline for
  // host-based deployment (β₂ = 0.01 shifts it slightly below 4).
  const PartialDeploymentModel model(params(0.75));
  EXPECT_NEAR(model.slowdown_factor(), 1.0 / 0.25, 0.2);
}

TEST(PartialDeployment, Fig2EightyVsHundredPercentGulf) {
  // The paper highlights the gulf between 80% and 100% deployment.
  const PartialDeploymentModel p80(params(0.8));
  const PartialDeploymentModel p100(params(1.0));
  const double t80 = p80.time_to_level(0.5);
  const double t100 = p100.time_to_level(0.5);
  EXPECT_GT(t100 / t80, 10.0);
}

/// Property: more deployment never speeds the worm up, and the
/// time-to-50% grows monotonically with q.
class DeploymentSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeploymentSweep, MonotoneInDeployment) {
  const double q = GetParam();
  const PartialDeploymentModel lo(params(q));
  const PartialDeploymentModel hi(params(std::min(1.0, q + 0.1)));
  EXPECT_GE(lo.growth_rate(), hi.growth_rate());
  EXPECT_LE(lo.time_to_level(0.5), hi.time_to_level(0.5));
  // At any time, more deployment means no more infection.
  for (double t : {1.0, 5.0, 20.0, 100.0})
    EXPECT_GE(lo.fraction_at(t) + 1e-12, hi.fraction_at(t));
}

INSTANTIATE_TEST_SUITE_P(Fractions, DeploymentSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace dq::epidemic
