#include "epidemic/predator_prey.hpp"

#include <gtest/gtest.h>

#include "epidemic/si_model.hpp"

namespace dq::epidemic {
namespace {

PredatorPreyParams params() {
  PredatorPreyParams p;
  p.population = 1000.0;
  p.worm_rate = 0.8;
  p.predator_rate = 1.2;
  p.patch_time = 10.0;
  p.predator_delay = 5.0;
  p.initial_infected = 1.0;
  p.initial_predator = 1.0;
  return p;
}

TEST(PredatorPrey, Validation) {
  PredatorPreyParams p = params();
  p.patch_time = 0.0;
  EXPECT_THROW(PredatorPreyModel{p}, std::invalid_argument);
  p = params();
  p.initial_infected = 0.0;
  EXPECT_THROW(PredatorPreyModel{p}, std::invalid_argument);
  p = params();
  p.initial_infected = 600.0;
  p.initial_predator = 600.0;
  EXPECT_THROW(PredatorPreyModel{p}, std::invalid_argument);
}

TEST(PredatorPrey, MatchesSiBeforeRelease) {
  const PredatorPreyModel model(params());
  const std::vector<double> grid = uniform_grid(0.0, 5.0, 11);
  const PredatorPreyCurves curves = model.integrate(grid);
  SiParams sp;
  sp.population = 1000.0;
  sp.contact_rate = 0.8;
  sp.initial_infected = 1.0;
  const HomogeneousSi si(sp);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_NEAR(curves.infected_fraction.value_at(i),
                si.fraction_at(grid[i]), 1e-4);
}

TEST(PredatorPrey, ConservationAndMonotonicity) {
  const PredatorPreyModel model(params());
  const std::vector<double> grid = uniform_grid(0.0, 200.0, 201);
  const PredatorPreyCurves curves = model.integrate(grid);
  double prev_ever = 0.0, prev_removed = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double total = curves.infected_fraction.value_at(i) +
                         curves.predator_fraction.value_at(i) +
                         curves.removed_fraction.value_at(i);
    EXPECT_LE(total, 1.0 + 1e-6);
    EXPECT_GE(curves.ever_fraction.value_at(i) + 1e-9, prev_ever);
    EXPECT_GE(curves.removed_fraction.value_at(i) + 1e-9, prev_removed);
    prev_ever = curves.ever_fraction.value_at(i);
    prev_removed = curves.removed_fraction.value_at(i);
  }
}

TEST(PredatorPrey, PredatorCleansTheNetwork) {
  const PredatorPreyModel model(params());
  const PredatorPreyCurves curves =
      model.integrate(uniform_grid(0.0, 400.0, 201));
  // The main worm is eventually wiped out; almost everyone ends patched.
  EXPECT_LT(curves.infected_fraction.back_value(), 0.01);
  EXPECT_LT(curves.predator_fraction.back_value(), 0.05);
  EXPECT_GT(curves.removed_fraction.back_value(), 0.9);
}

TEST(PredatorPrey, EarlierReleaseLimitsDamage) {
  PredatorPreyParams early = params();
  early.predator_delay = 2.0;
  PredatorPreyParams late = params();
  late.predator_delay = 12.0;
  EXPECT_LT(PredatorPreyModel(early).final_ever_infected(),
            PredatorPreyModel(late).final_ever_infected());
}

TEST(PredatorPrey, FasterPredatorLimitsDamage) {
  PredatorPreyParams slow = params();
  slow.predator_rate = 0.6;
  PredatorPreyParams fast = params();
  fast.predator_rate = 2.4;
  EXPECT_LT(PredatorPreyModel(fast).final_ever_infected(),
            PredatorPreyModel(slow).final_ever_infected());
}

TEST(PredatorPrey, ThrottlingBothWithFixedClocksShrinksTheHeadStart) {
  // A contact-rate limiter throttles both worms. The predator's
  // release time and patch clock are wall-clock (human-driven), so
  // throttling shrinks the outbreak the predator must chase at release:
  // the main worm's total damage drops.
  PredatorPreyParams open = params();
  PredatorPreyParams throttled = params();
  throttled.worm_rate *= 0.25;
  throttled.predator_rate *= 0.25;
  EXPECT_LT(PredatorPreyModel(throttled).final_ever_infected(),
            PredatorPreyModel(open).final_ever_infected());
}

TEST(PredatorPrey, TimeRescalingInvariance) {
  // Scaling both contact rates by k while scaling the delay and patch
  // time by 1/k is a pure change of time units: the final damage is
  // identical. (This isolates what throttling really changes — the
  // wall-clock race against human/predator response clocks.)
  PredatorPreyParams base = params();
  PredatorPreyParams rescaled = params();
  const double k = 0.5;
  rescaled.worm_rate *= k;
  rescaled.predator_rate *= k;
  rescaled.predator_delay /= k;
  rescaled.patch_time /= k;
  EXPECT_NEAR(PredatorPreyModel(base).final_ever_infected(),
              PredatorPreyModel(rescaled).final_ever_infected(1000.0),
              1e-3);
}

}  // namespace
}  // namespace dq::epidemic
