#include "epidemic/si_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace dq::epidemic {
namespace {

SiParams default_params() {
  SiParams p;
  p.population = 1000.0;
  p.contact_rate = 0.8;
  p.initial_infected = 1.0;
  return p;
}

TEST(HomogeneousSi, Validation) {
  SiParams p = default_params();
  p.population = 0.0;
  EXPECT_THROW(HomogeneousSi{p}, std::invalid_argument);
  p = default_params();
  p.initial_infected = 0.0;
  EXPECT_THROW(HomogeneousSi{p}, std::invalid_argument);
  p = default_params();
  p.initial_infected = 1000.0;
  EXPECT_THROW(HomogeneousSi{p}, std::invalid_argument);
  p = default_params();
  p.contact_rate = 0.0;
  EXPECT_THROW(HomogeneousSi{p}, std::invalid_argument);
}

TEST(HomogeneousSi, InitialFraction) {
  const HomogeneousSi model(default_params());
  EXPECT_NEAR(model.fraction_at(0.0), 0.001, 1e-12);
}

TEST(HomogeneousSi, Saturates) {
  const HomogeneousSi model(default_params());
  EXPECT_NEAR(model.fraction_at(100.0), 1.0, 1e-9);
}

TEST(HomogeneousSi, ClosedFormMatchesOdeIntegration) {
  const HomogeneousSi model(default_params());
  const std::vector<double> grid = uniform_grid(0.0, 30.0, 31);
  const TimeSeries closed = model.closed_form(grid);
  const TimeSeries numeric = model.integrate(grid);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_NEAR(closed.value_at(i), numeric.value_at(i), 1e-6);
}

TEST(HomogeneousSi, TimeToLevelIsInverse) {
  const HomogeneousSi model(default_params());
  const double t = model.time_to_level(0.5);
  EXPECT_NEAR(model.fraction_at(t), 0.5, 1e-12);
  // ln(999)/0.8 ≈ 8.63 — the epidemic time scale of the paper's Figs 7-8.
  EXPECT_NEAR(t, 8.634, 0.01);
}

TEST(HomogeneousSi, ApproxTimeToCount) {
  const HomogeneousSi model(default_params());
  EXPECT_NEAR(model.approx_time_to_count(200.0), std::log(200.0) / 0.8,
              1e-12);
  EXPECT_THROW(model.approx_time_to_count(0.5), std::invalid_argument);
}

TEST(HomogeneousSi, HigherBetaSpreadsFaster) {
  SiParams fast = default_params();
  fast.contact_rate = 1.6;
  const HomogeneousSi slow(default_params());
  const HomogeneousSi quick(fast);
  EXPECT_LT(quick.time_to_level(0.5), slow.time_to_level(0.5));
}

/// Property sweep: time_to_level is monotone in the level, and the
/// closed form passes through it exactly, for a range of rates.
class SiSweep : public ::testing::TestWithParam<double> {};

TEST_P(SiSweep, TimeToLevelMonotoneAndConsistent) {
  SiParams p = default_params();
  p.contact_rate = GetParam();
  const HomogeneousSi model(p);
  double prev = -1.0;
  for (double level : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double t = model.time_to_level(level);
    EXPECT_GT(t, prev);
    EXPECT_NEAR(model.fraction_at(t), level, 1e-9);
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SiSweep,
                         ::testing::Values(0.05, 0.2, 0.8, 1.5, 3.0));

}  // namespace
}  // namespace dq::epidemic
