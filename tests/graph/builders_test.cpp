#include "graph/builders.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dq::graph {
namespace {

TEST(Builders, Star) {
  const Graph g = make_star(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 4u);
  for (NodeId leaf = 1; leaf < 5; ++leaf) EXPECT_EQ(g.degree(leaf), 1u);
  EXPECT_THROW(make_star(1), std::invalid_argument);
}

TEST(Builders, Complete) {
  const Graph g = make_complete(5);
  EXPECT_EQ(g.num_edges(), 10u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Builders, Ring) {
  const Graph g = make_ring(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_THROW(make_ring(2), std::invalid_argument);
}

TEST(Builders, ErdosRenyiEdgeCount) {
  Rng rng(1);
  const Graph g = make_erdos_renyi(100, 0.1, rng);
  // Expected edges: C(100,2) * 0.1 = 495.
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 495.0, 100.0);
  EXPECT_THROW(make_erdos_renyi(10, 1.5, rng), std::invalid_argument);
}

TEST(Builders, ErdosRenyiExtremes) {
  Rng rng(2);
  EXPECT_EQ(make_erdos_renyi(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(make_erdos_renyi(10, 1.0, rng).num_edges(), 45u);
}

TEST(Builders, BarabasiAlbertStructure) {
  Rng rng(3);
  const Graph g = make_barabasi_albert(500, 2, rng);
  EXPECT_EQ(g.num_nodes(), 500u);
  // Seed clique edges + m per added node.
  EXPECT_EQ(g.num_edges(), 3u + (500u - 3u) * 2u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_THROW(make_barabasi_albert(2, 2, rng), std::invalid_argument);
  EXPECT_THROW(make_barabasi_albert(10, 0, rng), std::invalid_argument);
}

TEST(Builders, BarabasiAlbertHeavyTail) {
  Rng rng(4);
  const Graph g = make_barabasi_albert(1000, 2, rng);
  // The max degree of a BA graph far exceeds the mean degree (4).
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    max_degree = std::max(max_degree, g.degree(v));
  EXPECT_GT(max_degree, 30u);
  // Estimated power-law exponent lands in a plausible band for BA
  // (theoretical 3, finite-size CCDF fits run low).
  const double gamma = estimate_powerlaw_exponent(g);
  EXPECT_GT(gamma, 1.5);
  EXPECT_LT(gamma, 4.0);
}

TEST(Builders, Waxman) {
  Rng rng(5);
  const Graph g = make_waxman(100, 0.8, 0.3, rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_GT(g.num_edges(), 0u);
  EXPECT_THROW(make_waxman(10, 0.0, 0.3, rng), std::invalid_argument);
  EXPECT_THROW(make_waxman(10, 0.5, 0.0, rng), std::invalid_argument);
}

TEST(Builders, EnsureConnected) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  ensure_connected(g);
  EXPECT_TRUE(g.is_connected());
  // Exactly the two missing bridges were added.
  EXPECT_EQ(g.num_edges(), 5u);
}

TEST(Builders, SubnetTopologyStructure) {
  Rng rng(6);
  const SubnetTopology topo = make_subnet_topology(4, 5, rng);
  EXPECT_EQ(topo.num_subnets(), 4u);
  EXPECT_EQ(topo.graph.num_nodes(), 4u * 6u);
  EXPECT_TRUE(topo.graph.is_connected());
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(topo.members[s].size(), 6u);
    EXPECT_EQ(topo.members[s][0], topo.gateways[s]);
    for (NodeId m : topo.members[s]) EXPECT_EQ(topo.subnet_of[m], s);
    // Switched LAN: members are pairwise connected.
    for (NodeId a : topo.members[s])
      for (NodeId b : topo.members[s])
        if (a != b) {
          EXPECT_TRUE(topo.graph.has_edge(a, b));
        }
  }
}

TEST(Builders, SubnetTopologyIntraPathsAvoidGateway) {
  Rng rng(7);
  const SubnetTopology topo = make_subnet_topology(3, 4, rng);
  // Two non-gateway members of the same subnet are directly linked.
  const NodeId a = topo.members[1][1];
  const NodeId b = topo.members[1][2];
  EXPECT_TRUE(topo.graph.has_edge(a, b));
}

TEST(Builders, SubnetTopologyTwoSubnets) {
  Rng rng(8);
  const SubnetTopology topo = make_subnet_topology(2, 3, rng);
  EXPECT_TRUE(topo.graph.has_edge(topo.gateways[0], topo.gateways[1]));
}

TEST(Builders, SubnetTopologyErrors) {
  Rng rng(9);
  EXPECT_THROW(make_subnet_topology(0, 5, rng), std::invalid_argument);
  EXPECT_THROW(make_subnet_topology(5, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace dq::graph
