#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dq::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, AddEdgeBasics) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, RejectsSelfLoopDuplicateAndRange) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 2), std::invalid_argument);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
}

TEST(Graph, NeighborsSpan) {
  Graph g(4);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  EXPECT_EQ(g.neighbors(1).size(), 3u);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
}

TEST(Graph, AddNode) {
  Graph g(1);
  const NodeId n = g.add_node();
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(g.num_nodes(), 2u);
  g.add_edge(0, n);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, NodesByDegreeDescWithDeterministicTies) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  const auto order = g.nodes_by_degree_desc();
  EXPECT_EQ(order[0], 0u);              // degree 3
  EXPECT_EQ(order[1], 1u);              // degree 2, lowest id first
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 3u);
}

}  // namespace
}  // namespace dq::graph
