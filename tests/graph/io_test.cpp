#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "graph/builders.hpp"
#include "graph/routing.hpp"

namespace dq::graph {
namespace {

TEST(EdgeListIo, ParsesBasicList) {
  const Graph g = parse_edge_list(
      "# a comment\n"
      "1 2\n"
      "2 3\n"
      "\n"
      "1 3\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.is_connected());
}

TEST(EdgeListIo, RemapsSparseIds) {
  const Graph g = parse_edge_list("1000000 42\n42 7\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  // First-appearance order: 1000000 -> 0, 42 -> 1, 7 -> 2.
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(EdgeListIo, SkipsSelfLoopsAndDuplicates) {
  const Graph g = parse_edge_list("1 1\n1 2\n2 1\n1 2\n");
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(EdgeListIo, RejectsMalformedLines) {
  EXPECT_THROW(parse_edge_list("1\n"), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("a b\n"), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("1 2 3\n"), std::invalid_argument);
}

TEST(EdgeListIo, RoundTripPreservesStructure) {
  // Parsing remaps ids in first-appearance order, so the round trip is
  // an isomorphism: node/edge counts, degree sequence and connectivity
  // survive even though specific ids may not.
  Rng rng(5);
  const Graph original = make_barabasi_albert(80, 2, rng);
  const Graph parsed = parse_edge_list(to_edge_list(original));
  ASSERT_EQ(parsed.num_nodes(), original.num_nodes());
  ASSERT_EQ(parsed.num_edges(), original.num_edges());
  EXPECT_EQ(parsed.is_connected(), original.is_connected());
  std::vector<std::size_t> degrees_a, degrees_b;
  for (NodeId v = 0; v < original.num_nodes(); ++v) {
    degrees_a.push_back(original.degree(v));
    degrees_b.push_back(parsed.degree(v));
  }
  std::sort(degrees_a.begin(), degrees_a.end());
  std::sort(degrees_b.begin(), degrees_b.end());
  EXPECT_EQ(degrees_a, degrees_b);
}

TEST(EdgeListIo, FileRoundTrip) {
  const std::string path = "/tmp/dq_graph_io_test.edges";
  Rng rng(6);
  const Graph original = make_star(10);
  save_edge_list(original, path);
  const Graph loaded = load_edge_list(path);
  EXPECT_EQ(loaded.num_nodes(), 10u);
  EXPECT_EQ(loaded.num_edges(), 9u);
  std::remove(path.c_str());
  EXPECT_THROW(load_edge_list("/nonexistent/nope.edges"),
               std::invalid_argument);
}

TEST(TransitStub, StructureAndRoles) {
  Rng rng(7);
  const TransitStubTopology topo = make_transit_stub(3, 4, 2, 10, rng);
  const std::size_t transit = 3 * 4;
  const std::size_t stubs = transit * 2;
  EXPECT_EQ(topo.transit_routers.size(), transit);
  EXPECT_EQ(topo.stub_gateways.size(), stubs);
  EXPECT_EQ(topo.graph.num_nodes(), transit + stubs * 10);
  EXPECT_TRUE(topo.graph.is_connected());

  const RoleAssignment roles = topo.roles();
  EXPECT_EQ(roles.backbone.size(), transit);
  EXPECT_EQ(roles.edge.size(), stubs);
  EXPECT_EQ(roles.hosts.size(), topo.graph.num_nodes() - transit - stubs);

  // Transit routers carry no stub domain; stub members do.
  for (NodeId r : topo.transit_routers)
    EXPECT_EQ(topo.domain_of[r], TransitStubTopology::kNoDomain);
  for (NodeId gw : topo.stub_gateways)
    EXPECT_NE(topo.domain_of[gw], TransitStubTopology::kNoDomain);
}

TEST(TransitStub, AllStubTrafficCrossesTransit) {
  Rng rng(8);
  const TransitStubTopology topo = make_transit_stub(2, 3, 2, 6, rng);
  const RoutingTable routing(topo.graph);
  const RoleAssignment roles = topo.roles();
  // Hosts in different stub domains can only reach each other through
  // the transit core (or their gateways): coverage by backbone+edge is
  // complete for inter-domain pairs. Check via a sample.
  std::vector<char> via(topo.graph.num_nodes(), 0);
  for (NodeId r : topo.transit_routers) via[r] = 1;
  for (NodeId gw : topo.stub_gateways) via[gw] = 1;
  // Pick one host from two different domains.
  NodeId a = 0, b = 0;
  for (NodeId v : roles.hosts) {
    if (topo.domain_of[v] == 0) a = v;
    if (topo.domain_of[v] == 3) b = v;
  }
  const auto path = routing.path(a, b);
  bool crosses = false;
  for (std::size_t i = 1; i + 1 < path.size(); ++i)
    crosses = crosses || via[path[i]];
  EXPECT_TRUE(crosses);
}

TEST(TransitStub, Validation) {
  Rng rng(9);
  EXPECT_THROW(make_transit_stub(0, 2, 2, 5, rng), std::invalid_argument);
  EXPECT_THROW(make_transit_stub(2, 0, 2, 5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace dq::graph
