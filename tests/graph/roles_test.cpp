#include "graph/roles.hpp"

#include <gtest/gtest.h>

#include "graph/builders.hpp"

namespace dq::graph {
namespace {

TEST(Roles, PaperDesignationOnPowerLaw) {
  Rng rng(1);
  const Graph g = make_barabasi_albert(1000, 2, rng);
  const RoleAssignment roles = assign_roles(g, 0.05, 0.10);
  EXPECT_EQ(roles.backbone.size(), 50u);
  EXPECT_EQ(roles.edge.size(), 100u);
  EXPECT_EQ(roles.hosts.size(), 850u);
  EXPECT_EQ(roles.count(NodeRole::kBackboneRouter), 50u);
  EXPECT_EQ(roles.count(NodeRole::kEdgeRouter), 100u);
  EXPECT_EQ(roles.count(NodeRole::kHost), 850u);

  // Backbone nodes have degree >= every edge router, which in turn
  // have degree >= every host.
  std::size_t min_backbone = g.num_nodes(), max_edge = 0, max_host = 0;
  for (NodeId b : roles.backbone)
    min_backbone = std::min(min_backbone, g.degree(b));
  for (NodeId e : roles.edge) max_edge = std::max(max_edge, g.degree(e));
  for (NodeId h : roles.hosts) max_host = std::max(max_host, g.degree(h));
  EXPECT_GE(min_backbone, max_edge);
  std::size_t min_edge = g.num_nodes();
  for (NodeId e : roles.edge) min_edge = std::min(min_edge, g.degree(e));
  EXPECT_GE(min_edge, max_host);
}

TEST(Roles, StarHubIsTheSingleBackboneNode) {
  const Graph g = make_star(200);
  const RoleAssignment roles = assign_roles(g, 1.0 / 200.0, 0.0);
  ASSERT_EQ(roles.backbone.size(), 1u);
  EXPECT_EQ(roles.backbone[0], 0u);
  EXPECT_EQ(roles.hosts.size(), 199u);
}

TEST(Roles, AlwaysKeepsAHost) {
  const Graph g = make_complete(4);
  const RoleAssignment roles = assign_roles(g, 0.5, 0.5);
  EXPECT_GE(roles.count(NodeRole::kHost), 1u);
}

TEST(Roles, Indicator) {
  const Graph g = make_star(5);
  const RoleAssignment roles = assign_roles(g, 0.2, 0.0);
  const std::vector<char> ind = roles.indicator(NodeRole::kBackboneRouter);
  EXPECT_EQ(ind.size(), 5u);
  EXPECT_EQ(ind[0], 1);
  EXPECT_EQ(ind[1], 0);
}

TEST(Roles, ValidatesFractions) {
  const Graph g = make_star(5);
  EXPECT_THROW(assign_roles(g, -0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(assign_roles(g, 0.6, 0.6), std::invalid_argument);
}

TEST(Roles, ZeroFractionsAllHosts) {
  const Graph g = make_star(5);
  const RoleAssignment roles = assign_roles(g, 0.0, 0.0);
  EXPECT_EQ(roles.count(NodeRole::kHost), 5u);
}

}  // namespace
}  // namespace dq::graph
