#include "graph/routing.hpp"

#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "graph/roles.hpp"

namespace dq::graph {
namespace {

TEST(RoutingTable, RejectsDisconnected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(RoutingTable{g}, std::invalid_argument);
}

TEST(RoutingTable, StarDistances) {
  const Graph g = make_star(5);
  const RoutingTable rt(g);
  EXPECT_EQ(rt.distance(0, 0), 0u);
  EXPECT_EQ(rt.distance(0, 3), 1u);
  EXPECT_EQ(rt.distance(1, 4), 2u);
}

TEST(RoutingTable, StarNextHopsGoThroughHub) {
  const Graph g = make_star(5);
  const RoutingTable rt(g);
  EXPECT_EQ(rt.next_hop(1, 4).value(), 0u);
  EXPECT_EQ(rt.next_hop(0, 4).value(), 4u);
  EXPECT_FALSE(rt.next_hop(2, 2).has_value());
}

TEST(RoutingTable, PathEndpointsAndContinuity) {
  Rng rng(1);
  const Graph g = make_barabasi_albert(60, 2, rng);
  const RoutingTable rt(g);
  for (NodeId src : {0u, 17u, 42u}) {
    for (NodeId dst : {5u, 33u, 59u}) {
      const auto path = rt.path(src, dst);
      ASSERT_GE(path.size(), 1u);
      EXPECT_EQ(path.front(), src);
      EXPECT_EQ(path.back(), dst);
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
      EXPECT_EQ(path.size(), rt.distance(src, dst) + 1u);
    }
  }
}

TEST(RoutingTable, RingDistancesAreMinimal) {
  const Graph g = make_ring(8);
  const RoutingTable rt(g);
  EXPECT_EQ(rt.distance(0, 4), 4u);
  EXPECT_EQ(rt.distance(0, 7), 1u);
  EXPECT_EQ(rt.distance(2, 6), 4u);
}

TEST(RoutingTable, StarLinkLoads) {
  const Graph g = make_star(4);  // hub 0, leaves 1..3
  const RoutingTable rt(g);
  // Ordered pairs: leaf<->leaf paths (3*2 = 6) cross two hub links each;
  // hub<->leaf (6 ordered) cross one. Each hub-leaf link carries:
  // 2 (to/from hub) + 2*2 (as transit for the other two leaves, both
  // directions) = 6.
  for (NodeId leaf = 1; leaf < 4; ++leaf)
    EXPECT_EQ(rt.link_load(make_link_key(0, leaf)), 6u);
  EXPECT_EQ(rt.total_link_load(), 18u);
}

TEST(RoutingTable, LinkLoadUnknownLinkThrows) {
  const Graph g = make_star(4);
  const RoutingTable rt(g);
  EXPECT_THROW(rt.link_load(make_link_key(1, 2)), std::invalid_argument);
}

TEST(RoutingTable, PathCoverageHubCoversAllLeafPairs) {
  const Graph g = make_star(6);
  const RoutingTable rt(g);
  std::vector<char> via(6, 0);
  via[0] = 1;  // the hub
  const std::vector<NodeId> leaves = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(rt.path_coverage(leaves, via), 1.0);
}

TEST(RoutingTable, PathCoverageExcludesEndpoints) {
  const Graph g = make_star(6);
  const RoutingTable rt(g);
  std::vector<char> via(6, 0);
  via[1] = 1;  // a leaf can never be an intermediate node
  const std::vector<NodeId> leaves = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(rt.path_coverage(leaves, via), 0.0);
}

TEST(RoutingTable, PathCoveragePartial) {
  // Line: 0-1-2-3. Node 1 covers pairs (0,2),(0,3),(2,0),(3,0) among
  // endpoints {0,2,3}: pairs (0,2),(0,3) and reverses = 4 of 6.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const RoutingTable rt(g);
  std::vector<char> via(4, 0);
  via[1] = 1;
  EXPECT_DOUBLE_EQ(rt.path_coverage({0, 2, 3}, via), 4.0 / 6.0);
}

TEST(RoutingTable, PathCoverageValidatesViaSize) {
  const Graph g = make_star(4);
  const RoutingTable rt(g);
  EXPECT_THROW(rt.path_coverage({1, 2}, std::vector<char>(3, 0)),
               std::invalid_argument);
}

TEST(RoutingTable, NodeTransitLoadsOnStar) {
  const Graph g = make_star(5);  // hub 0, leaves 1..4
  const RoutingTable rt(g);
  const auto loads = rt.node_transit_loads();
  // The hub transits every leaf-to-leaf ordered pair: 4*3 = 12.
  EXPECT_EQ(loads[0], 12u);
  for (NodeId leaf = 1; leaf < 5; ++leaf) EXPECT_EQ(loads[leaf], 0u);
}

TEST(RoutingTable, NodeTransitLoadsOnLine) {
  Graph g(4);  // 0-1-2-3
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const RoutingTable rt(g);
  const auto loads = rt.node_transit_loads();
  // Node 1 transits (0,2),(0,3),(2,0),(3,0) = 4; node 2 symmetric.
  EXPECT_EQ(loads[0], 0u);
  EXPECT_EQ(loads[1], 4u);
  EXPECT_EQ(loads[2], 4u);
  EXPECT_EQ(loads[3], 0u);
}

TEST(Roles, TransitAssignmentPicksTheHub) {
  const Graph g = make_star(20);
  const RoutingTable rt(g);
  const RoleAssignment roles =
      assign_roles_by_transit(g, rt, 1.0 / 20.0, 0.0);
  ASSERT_EQ(roles.backbone.size(), 1u);
  EXPECT_EQ(roles.backbone[0], 0u);
}

TEST(Roles, TransitAndDegreeAgreeAtTheTopOfPowerLaw) {
  Rng rng(6);
  const Graph g = make_barabasi_albert(300, 2, rng);
  const RoutingTable rt(g);
  const RoleAssignment by_degree = assign_roles(g, 0.05, 0.0);
  const RoleAssignment by_transit =
      assign_roles_by_transit(g, rt, 0.05, 0.0);
  // The two top-15 sets overlap heavily on BA graphs.
  std::size_t common = 0;
  for (NodeId b : by_degree.backbone)
    if (by_transit.role[b] == NodeRole::kBackboneRouter) ++common;
  EXPECT_GE(common, by_degree.backbone.size() / 2);
}

TEST(RoutingTable, DeterministicTieBreaking) {
  // Square: 0-1, 1-3, 0-2, 2-3. Two equal paths 0->3; the lowest-id
  // first hop (1) must win deterministically.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const RoutingTable rt(g);
  EXPECT_EQ(rt.next_hop(0, 3).value(), 1u);
}

}  // namespace
}  // namespace dq::graph
