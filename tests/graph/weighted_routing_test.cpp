#include "graph/weighted_routing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builders.hpp"

namespace dq::graph {
namespace {

TEST(LinkWeights, UniformCoversEveryLink) {
  const Graph g = make_star(5);
  const LinkWeights w = LinkWeights::uniform(g);
  EXPECT_EQ(w.num_links(), 4u);
  EXPECT_DOUBLE_EQ(w.weight(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(w.weight(3, 0), 1.0);
  EXPECT_THROW(w.weight(1, 2), std::invalid_argument);
}

TEST(LinkWeights, Validation) {
  const Graph g = make_star(4);
  EXPECT_THROW(LinkWeights(g, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(LinkWeights(g, {1.0, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(LinkWeights(g, {1.0, 1.0, -2.0}), std::invalid_argument);
}

TEST(Dijkstra, PicksTheCheaperLongerPath) {
  // Triangle with an expensive direct edge: 0-1 cost 10, 0-2-1 cost 3.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  // Canonical order: (0,1), (0,2), (1,2).
  const LinkWeights w(g, {10.0, 1.0, 2.0});
  const ShortestPaths sp = dijkstra(g, w, 0);
  EXPECT_DOUBLE_EQ(sp.distance[1], 3.0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 1.0);
  const std::vector<NodeId> expected = {0, 2, 1};
  EXPECT_EQ(sp.path_to(1), expected);
}

TEST(Dijkstra, UnreachableNodesStayInfinite) {
  Graph g(3);
  g.add_edge(0, 1);
  const LinkWeights w(g, {1.0});
  const ShortestPaths sp = dijkstra(g, w, 0);
  EXPECT_TRUE(std::isinf(sp.distance[2]));
  EXPECT_TRUE(sp.path_to(2).empty());
}

TEST(Dijkstra, UniformWeightsMatchBfs) {
  Rng rng(3);
  const Graph g = make_barabasi_albert(120, 2, rng);
  const LinkWeights w = LinkWeights::uniform(g);
  const RoutingTable bfs(g);
  const ShortestPaths sp = dijkstra(g, w, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_DOUBLE_EQ(sp.distance[v],
                     static_cast<double>(bfs.distance(0, v)));
}

TEST(Dijkstra, SourceOutOfRange) {
  const Graph g = make_star(3);
  const LinkWeights w = LinkWeights::uniform(g);
  EXPECT_THROW(dijkstra(g, w, 5), std::out_of_range);
}

TEST(WeightedRoutingTable, RejectsDisconnected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(WeightedRoutingTable(g, LinkWeights::uniform(g)),
               std::invalid_argument);
}

TEST(WeightedRoutingTable, NextHopFollowsCheapPath) {
  Graph g(4);  // square: 0-1-3 and 0-2-3
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  // Canonical: (0,1) (0,2) (1,3) (2,3). Make the 0-2-3 route cheap.
  const LinkWeights w(g, {5.0, 1.0, 5.0, 1.0});
  const WeightedRoutingTable rt(g, w);
  EXPECT_EQ(rt.next_hop(0, 3).value(), 2u);
  EXPECT_DOUBLE_EQ(rt.distance(0, 3), 2.0);
  const std::vector<NodeId> expected = {0, 2, 3};
  EXPECT_EQ(rt.path(0, 3), expected);
  EXPECT_FALSE(rt.next_hop(2, 2).has_value());
}

TEST(WeightedRoutingTable, PathsAreConsistentWithDistances) {
  Rng rng(4);
  const Graph g = make_barabasi_albert(60, 2, rng);
  // Random positive weights.
  std::vector<double> weights(g.num_edges());
  for (double& x : weights) x = rng.uniform(0.5, 3.0);
  const LinkWeights w(g, weights);
  const WeightedRoutingTable rt(g, w);
  for (NodeId src : {0u, 11u, 59u})
    for (NodeId dst : {7u, 23u, 42u}) {
      const auto path = rt.path(src, dst);
      double cost = 0.0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        cost += w.weight(path[i], path[i + 1]);
      EXPECT_NEAR(cost, rt.distance(src, dst), 1e-9);
    }
}

TEST(WeightedRoutingTable, CoverageMatchesBfsOnUniformStar) {
  const Graph g = make_star(6);
  const WeightedRoutingTable rt(g, LinkWeights::uniform(g));
  std::vector<char> via(6, 0);
  via[0] = 1;
  EXPECT_DOUBLE_EQ(rt.path_coverage({1, 2, 3, 4, 5}, via), 1.0);
  EXPECT_THROW(rt.path_coverage({1}, std::vector<char>(2, 0)),
               std::invalid_argument);
}

TEST(WeightedRoutingTable, WeightsCanRerouteAroundCoverage) {
  // Square again: with cheap 0-1-3, node 2 covers nothing; flip the
  // weights and it covers everything.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  std::vector<char> via(4, 0);
  via[2] = 1;
  {
    const LinkWeights w(g, {1.0, 5.0, 1.0, 5.0});
    const WeightedRoutingTable rt(g, w);
    EXPECT_DOUBLE_EQ(rt.path_coverage({0, 3}, via), 0.0);
  }
  {
    const LinkWeights w(g, {5.0, 1.0, 5.0, 1.0});
    const WeightedRoutingTable rt(g, w);
    EXPECT_DOUBLE_EQ(rt.path_coverage({0, 3}, via), 1.0);
  }
}

}  // namespace
}  // namespace dq::graph
