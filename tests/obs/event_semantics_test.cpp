// End-to-end event semantics on a fixed-seed star-graph quarantine
// run: every detected host goes suspected→quarantined exactly once
// (the quarantine period outlasts the horizon, so re-offense is
// impossible), strikes arrive in sim-time order, the NDJSON summary
// agrees with the engine's own QuarantineReport, and the whole event
// stream byte-matches a committed golden fixture
// (tests/data/golden/obs_star_quarantine.ndjson, regenerated with
// `dq_obs_test --update-golden`).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "campaign/job.hpp"
#include "golden_flag.hpp"
#include "obs/ndjson.hpp"
#include "obs/sink.hpp"
#include "simulator/runner.hpp"
#include "simulator/worm_sim.hpp"

namespace dq::obs {
namespace {

sim::Network star_network() {
  campaign::TopologySpec topo;
  topo.kind = campaign::TopologySpec::Kind::kStar;
  topo.nodes = 120;
  topo.backbone_fraction = 1.0 / 120.0;
  topo.edge_fraction = 0.0;
  return campaign::build_network(topo);
}

sim::SimulationConfig quarantine_config() {
  sim::SimulationConfig cfg;
  cfg.worm.contact_rate = 0.8;
  cfg.worm.filtered_contact_rate = 0.01;
  cfg.worm.initial_infected = 4;
  cfg.worm.hit_probability = 0.1;  // sparse scans feed the detectors
  cfg.legit.rate_per_node = 0.2;
  cfg.quarantine.enabled = true;
  // Quarantine outlasts the horizon: a host can serve at most one
  // period, so suspected→quarantined fires at most once per host.
  cfg.quarantine.policy.base_period = 100.0;
  cfg.max_ticks = 60.0;
  cfg.stop_when_saturated = false;
  cfg.seed = 777;
  return cfg;
}

struct TracedRun {
  sim::RunResult result;
  std::vector<Event> events;
  std::string ndjson;
};

const TracedRun& traced_run() {
  static const TracedRun run = [] {
    const sim::Network net = star_network();
    MultiRunSink sink(1);
    sim::WormSimulation sim(net, quarantine_config(), sink.run_sink(0));
    TracedRun out;
    out.result = sim.run();
    EXPECT_EQ(sink.ring(0).evicted(), 0u) << "fixture overflowed the ring";
    out.events = sink.ring(0).events();
    out.ndjson = sink.export_ndjson();
    return out;
  }();
  return run;
}

TEST(EventSemantics, ExactlyOneQuarantineTransitionPerDetectedHost) {
  const TracedRun& run = traced_run();
  std::map<std::uint32_t, int> suspected_to_quarantined;
  std::map<std::uint32_t, double> first_event_time;
  for (const Event& e : run.events) {
    if (e.kind != EventKind::kQuarantineTransition) continue;
    const auto from = static_cast<QState>(e.a);
    const auto to = static_cast<QState>(e.b);
    if (from == QState::kSuspected && to == QState::kQuarantined)
      ++suspected_to_quarantined[e.id];
    // With base_period > horizon nothing is ever released.
    EXPECT_NE(to, QState::kFree) << "host " << e.id << " released at "
                                 << e.time;
  }
  ASSERT_FALSE(suspected_to_quarantined.empty())
      << "fixture detected nothing — config drifted";
  for (const auto& [node, n] : suspected_to_quarantined)
    EXPECT_EQ(n, 1) << "host " << node << " quarantined more than once";
  // Every quarantined host matches the engine's own tally: detected
  // targets plus false positives.
  const auto quarantined_hosts =
      static_cast<double>(suspected_to_quarantined.size());
  EXPECT_DOUBLE_EQ(quarantined_hosts,
                   run.result.quarantine.detected_targets +
                       run.result.quarantine.false_positive_hosts);
  EXPECT_DOUBLE_EQ(run.result.quarantine.quarantine_events,
                   quarantined_hosts);
}

TEST(EventSemantics, StrikesArriveInSimTimeOrder) {
  const TracedRun& run = traced_run();
  double last = -1.0;
  std::size_t strikes = 0;
  for (const Event& e : run.events) {
    if (e.kind != EventKind::kDetectorStrike) continue;
    ++strikes;
    EXPECT_GE(e.time, last) << "strike at " << e.time << " out of order";
    last = e.time;
    EXPECT_GE(e.value, 1u);
  }
  EXPECT_GT(strikes, 0u);
}

TEST(EventSemantics, EveryQuarantineIsPrecededBySuspicion) {
  const TracedRun& run = traced_run();
  std::map<std::uint32_t, QState> state;
  for (const Event& e : run.events) {
    if (e.kind != EventKind::kQuarantineTransition) continue;
    const auto from = static_cast<QState>(e.a);
    const auto to = static_cast<QState>(e.b);
    const auto it = state.find(e.id);
    const QState current =
        it == state.end() ? QState::kFree : it->second;
    EXPECT_EQ(from, current)
        << "host " << e.id << " transition from inconsistent state";
    state[e.id] = to;
  }
  for (const auto& [node, s] : state) EXPECT_NE(s, QState::kFree);
}

TEST(EventSemantics, SummaryMatchesEngineReport) {
  const TracedRun& run = traced_run();
  const NdjsonSummary s = summarize_ndjson(run.ndjson);
  const quarantine::QuarantineReport& report = run.result.quarantine;
  EXPECT_EQ(static_cast<double>(s.detected_hosts), report.detected_targets);
  EXPECT_EQ(static_cast<double>(s.false_positive_hosts),
            report.false_positive_hosts);
  EXPECT_NEAR(s.mean_detection_latency, report.mean_detection_latency, 1e-9);
  EXPECT_TRUE(s.strikes_time_ordered);
  EXPECT_EQ(s.runs, 1u);
}

std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(EventSemantics, NdjsonMatchesGoldenFixture) {
  const TracedRun& run = traced_run();
  const std::filesystem::path path =
      std::filesystem::path(DQ_GOLDEN_DIR) / "obs_star_quarantine.ndjson";
  if (dq::obs_test::g_update_golden) {
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << run.ndjson;
    SUCCEED() << "updated " << path;
    return;
  }
  const std::optional<std::string> golden = read_file(path);
  ASSERT_TRUE(golden.has_value())
      << path << " is missing — run dq_obs_test --update-golden and "
      << "commit the fixture";
  EXPECT_EQ(run.ndjson, *golden)
      << "event stream diverged from its fixture. If the behaviour "
      << "change is intended, regenerate with dq_obs_test "
      << "--update-golden and commit the diff.";
}

TEST(RunManyObs, MetricsAndTracesAreThreadCountInvariant) {
  // One shared registry (commutative updates) + one private ring per
  // run: serial and 8-way parallel execution must produce identical
  // deterministic snapshots and identical concatenated NDJSON.
  const sim::Network net = star_network();
  sim::SimulationConfig cfg = quarantine_config();
  cfg.max_ticks = 30.0;
  constexpr std::size_t kRuns = 4;

  MultiRunSink serial(kRuns);
  MultiRunSink parallel(kRuns);
  (void)sim::run_many(net, cfg, kRuns, /*max_parallelism=*/1, &serial);
  (void)sim::run_many(net, cfg, kRuns, /*max_parallelism=*/8, &parallel);

  EXPECT_EQ(serial.metrics().snapshot(true).dump(),
            parallel.metrics().snapshot(true).dump());
  const std::string serial_ndjson = serial.export_ndjson();
  EXPECT_EQ(serial_ndjson, parallel.export_ndjson());
  EXPECT_FALSE(serial_ndjson.empty());
  EXPECT_EQ(serial.metrics().counter("sim.runs").value(), kRuns);
}

TEST(RunManyObs, UndersizedSinkIsRejected) {
  const sim::Network net = star_network();
  sim::SimulationConfig cfg = quarantine_config();
  cfg.max_ticks = 5.0;
  MultiRunSink sink(1);
  EXPECT_THROW(sim::run_many(net, cfg, 2, 1, &sink), std::invalid_argument);
}

}  // namespace
}  // namespace dq::obs
