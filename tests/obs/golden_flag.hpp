// Shared --update-golden state for the dq_obs_test binary (the flag is
// parsed in obs_test_main.cpp before gtest sees the command line).
#pragma once

namespace dq::obs_test {
extern bool g_update_golden;
}  // namespace dq::obs_test
