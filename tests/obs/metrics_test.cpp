#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

namespace dq::obs {
namespace {

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("sim.ticks");
  Counter& b = reg.counter("sim.ticks");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  Gauge& g = reg.gauge("load");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("load").value(), 2.5);

  Histogram& h = reg.histogram("latency");
  h.record(4);
  EXPECT_EQ(reg.histogram("latency").count(), 1u);
}

TEST(Histogram, PowerOfTwoBoundariesAreExact) {
  // Bucket 0 is exactly {0}; bucket b >= 1 covers [2^(b-1), 2^b - 1],
  // so 2^k and 2^k - 1 must land in adjacent buckets for every k.
  Histogram h;
  h.record(0);
  EXPECT_EQ(h.bucket(0), 1u);
  for (std::size_t k = 1; k < 64; ++k) {
    Histogram fresh;
    const std::uint64_t pow2 = std::uint64_t{1} << k;
    fresh.record(pow2);
    fresh.record(pow2 - 1);
    EXPECT_EQ(fresh.bucket(k + 1), 1u) << "2^" << k << " bucket";
    EXPECT_EQ(fresh.bucket(k), 1u) << "2^" << k << "-1 bucket";
    EXPECT_EQ(Histogram::bucket_lower_bound(k + 1), pow2);
    EXPECT_EQ(Histogram::bucket_upper_bound(k), pow2 - 1);
  }
  EXPECT_EQ(Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(64), ~std::uint64_t{0});
}

TEST(Histogram, CountAndSumTrackRecords) {
  Histogram h;
  h.record(1);
  h.record(2);
  h.record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1003u);
}

TEST(MetricsRegistry, SnapshotIsCanonicalAndSorted) {
  MetricsRegistry reg;
  reg.counter("z.last").add(2);
  reg.counter("a.first").add(1);
  reg.histogram("h").record(4);  // bucket 3 = [4,7]
  const std::string json = reg.snapshot().dump();
  EXPECT_EQ(json,
            "{\"counters\":{\"a.first\":1,\"z.last\":2},\"gauges\":{},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":4,"
            "\"buckets\":[[4,1]]}}}");
}

TEST(MetricsRegistry, DeterministicSnapshotExcludesWallClockMetrics) {
  MetricsRegistry reg;
  reg.counter("sim.ticks").add(50);
  reg.counter("trace.dropped", Determinism::kWallClock).add(7);
  reg.gauge("mem.bytes").set(123.0);  // gauges default to kWallClock
  reg.histogram("sim.run_micros", Determinism::kWallClock).record(80);

  const campaign::JsonValue full = reg.snapshot(false);
  EXPECT_NE(full.find("counters")->find("trace.dropped"), nullptr);
  EXPECT_NE(full.find("gauges")->find("mem.bytes"), nullptr);
  EXPECT_NE(full.find("histograms")->find("sim.run_micros"), nullptr);

  const campaign::JsonValue det = reg.snapshot(true);
  EXPECT_NE(det.find("counters")->find("sim.ticks"), nullptr);
  EXPECT_EQ(det.find("counters")->find("trace.dropped"), nullptr);
  EXPECT_EQ(det.find("gauges")->find("mem.bytes"), nullptr);
  EXPECT_EQ(det.find("histograms")->find("sim.run_micros"), nullptr);
}

TEST(MetricsRegistry, MergeSnapshotSumsCountersAndHistograms) {
  MetricsRegistry a;
  a.counter("sim.ticks").add(10);
  a.histogram("h").record(4);
  MetricsRegistry b;
  b.counter("sim.ticks").add(5);
  b.counter("sim.runs").add(1);
  b.histogram("h").record(5);   // same bucket [4,7]
  b.histogram("h").record(64);  // bucket 7

  campaign::JsonValue total;
  MetricsRegistry::merge_snapshot(total, a.snapshot());
  MetricsRegistry::merge_snapshot(total, b.snapshot());

  EXPECT_EQ(total.find("counters")->find("sim.ticks")->as_uint(), 15u);
  EXPECT_EQ(total.find("counters")->find("sim.runs")->as_uint(), 1u);
  const campaign::JsonValue* h = total.find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_uint(), 3u);
  EXPECT_EQ(h->find("sum")->as_uint(), 73u);
}

TEST(MetricsRegistry, MergeIsOrderInsensitiveForCounters) {
  MetricsRegistry a;
  a.counter("x").add(1);
  MetricsRegistry b;
  b.counter("x").add(2);
  campaign::JsonValue ab, ba;
  MetricsRegistry::merge_snapshot(ab, a.snapshot());
  MetricsRegistry::merge_snapshot(ab, b.snapshot());
  MetricsRegistry::merge_snapshot(ba, b.snapshot());
  MetricsRegistry::merge_snapshot(ba, a.snapshot());
  EXPECT_EQ(ab.dump(), ba.dump());
}

TEST(Labeled, SortsKeysForStableNames) {
  EXPECT_EQ(labeled("drops", {{"kind", "worm"}, {"dir", "in"}}),
            "drops{dir=in,kind=worm}");
  EXPECT_EQ(labeled("drops", {{"dir", "in"}, {"kind", "worm"}}),
            "drops{dir=in,kind=worm}");
  EXPECT_EQ(labeled("plain", {}), "plain");
}

TEST(HistogramQuantile, EmptyHistogramIsZeroForAnyQ) {
  Histogram h;
  EXPECT_EQ(histogram_quantile(h, 0.0), 0u);
  EXPECT_EQ(histogram_quantile(h, 0.5), 0u);
  EXPECT_EQ(histogram_quantile(h, 1.0), 0u);
}

TEST(HistogramQuantile, SingleSampleIsItsBucketForAnyQ) {
  Histogram h;
  h.record(100);  // bucket [64, 127]
  const std::uint64_t upper = 127;
  EXPECT_EQ(histogram_quantile(h, 0.0), upper);
  EXPECT_EQ(histogram_quantile(h, 0.5), upper);
  EXPECT_EQ(histogram_quantile(h, 0.999), upper);
  EXPECT_EQ(histogram_quantile(h, 1.0), upper);
}

TEST(HistogramQuantile, ExtremeQClampsInsteadOfOverOrUnderflowing) {
  Histogram h;
  h.record(1);
  h.record(1000);  // bucket [512, 1023]
  // q <= 0 clamps to rank 1 (smallest bucket); q >= 1 to rank count.
  EXPECT_EQ(histogram_quantile(h, -3.0), 1u);
  EXPECT_EQ(histogram_quantile(h, 0.0), 1u);
  EXPECT_EQ(histogram_quantile(h, 1.0), 1023u);
  EXPECT_EQ(histogram_quantile(h, 7.0), 1023u);
}

TEST(HistogramQuantile, NanQBehavesLikeZero) {
  Histogram h;
  h.record(1);
  h.record(1000);
  EXPECT_EQ(histogram_quantile(h, std::nan("")),
            histogram_quantile(h, 0.0));
}

TEST(HistogramQuantile, RanksSplitAcrossBuckets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(10);    // bucket [8, 15]
  for (int i = 0; i < 10; ++i) h.record(5000);  // bucket [4096, 8191]
  EXPECT_EQ(histogram_quantile(h, 0.5), 15u);
  EXPECT_EQ(histogram_quantile(h, 0.90), 15u);   // rank 90: last in low
  EXPECT_EQ(histogram_quantile(h, 0.901), 8191u);
  EXPECT_EQ(histogram_quantile(h, 0.99), 8191u);
}

TEST(MetricsRegistry, ConcurrentUpdatesCommuteToExactTotals) {
  // Counter adds and histogram records are commutative relaxed atomics:
  // the final snapshot must be exact regardless of interleaving.
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  Histogram& h = reg.histogram("values");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(2);
        h.record(8);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 2u * kThreads * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket(4), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace dq::obs
