#include "obs/ndjson.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dq::obs {
namespace {

Event make(double time, std::uint32_t id, EventKind kind, std::uint8_t a = 0,
           std::uint8_t b = 0, std::uint64_t value = 0) {
  Event e;
  e.time = time;
  e.id = id;
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.value = value;
  return e;
}

TEST(EventToJson, InfectionWithAndWithoutRun) {
  const Event e = make(1.5, 7, EventKind::kInfection);
  EXPECT_EQ(event_to_json(e, 0).dump(),
            "{\"t\":1.5,\"run\":0,\"kind\":\"infection\",\"node\":7}");
  EXPECT_EQ(event_to_json(e).dump(),
            "{\"t\":1.5,\"kind\":\"infection\",\"node\":7}");
}

TEST(EventToJson, QueueSiteIsHubOrLink) {
  EXPECT_EQ(event_to_json(make(2, 9, EventKind::kQueuePark, 1)).dump(),
            "{\"t\":2,\"kind\":\"queue_park\",\"hub\":9}");
  EXPECT_EQ(event_to_json(make(2, 9, EventKind::kQueueRelease)).dump(),
            "{\"t\":2,\"kind\":\"queue_release\",\"link\":9}");
}

TEST(EventToJson, QuarantineTransitionNamesStates) {
  const Event e = make(3, 4, EventKind::kQuarantineTransition,
                       static_cast<std::uint8_t>(QState::kSuspected),
                       static_cast<std::uint8_t>(QState::kQuarantined), 2);
  EXPECT_EQ(event_to_json(e).dump(),
            "{\"t\":3,\"kind\":\"quarantine_transition\",\"node\":4,"
            "\"from\":\"suspected\",\"to\":\"quarantined\",\"offenses\":2}");
}

TEST(EventToJson, QuarantineDropDirectionAndPacket) {
  const Event e = make(4, 11, EventKind::kQuarantineDrop, /*a=*/1,
                       /*b=*/2, /*value=*/5);
  EXPECT_EQ(event_to_json(e).dump(),
            "{\"t\":4,\"kind\":\"quarantine_drop\",\"node\":11,"
            "\"direction\":\"inbound\",\"packet\":\"legit\",\"count\":5}");
}

TEST(EventToJson, DetectorStrikeCarriesStrikeCount) {
  const Event e = make(5, 3, EventKind::kDetectorStrike, 0, 0, 2);
  EXPECT_EQ(event_to_json(e).dump(),
            "{\"t\":5,\"kind\":\"detector_strike\",\"node\":3,"
            "\"strikes\":2}");
}

TEST(Summarize, DetectionSemanticsMirrorQuarantineReport) {
  // Node 1: infected then quarantined (detected, latency 4).
  // Node 2: quarantined but never infected (false positive).
  // Node 3: infected, never quarantined.
  // Node 4: quarantined at t=2 then infected at t=6 — still "detected"
  // with latency clamped to 0, matching QuarantineReport.
  const std::string text =
      "{\"t\":1,\"kind\":\"infection\",\"node\":1}\n"
      "{\"t\":3,\"kind\":\"detector_strike\",\"node\":1,\"strikes\":1}\n"
      "{\"t\":5,\"kind\":\"quarantine_transition\",\"node\":1,"
      "\"from\":\"suspected\",\"to\":\"quarantined\",\"offenses\":1}\n"
      "{\"t\":3,\"kind\":\"quarantine_transition\",\"node\":2,"
      "\"from\":\"suspected\",\"to\":\"quarantined\",\"offenses\":1}\n"
      "{\"t\":4,\"kind\":\"infection\",\"node\":3}\n"
      "{\"t\":2,\"kind\":\"quarantine_transition\",\"node\":4,"
      "\"from\":\"suspected\",\"to\":\"quarantined\",\"offenses\":1}\n"
      "{\"t\":6,\"kind\":\"infection\",\"node\":4}\n";
  const NdjsonSummary s = summarize_ndjson(text);
  EXPECT_EQ(s.total_events, 7u);
  EXPECT_EQ(s.malformed_lines, 0u);
  EXPECT_EQ(s.runs, 1u);
  EXPECT_EQ(s.infected_hosts, 3u);
  EXPECT_EQ(s.quarantined_hosts, 3u);
  EXPECT_EQ(s.detected_hosts, 2u);
  EXPECT_EQ(s.false_positive_hosts, 1u);
  EXPECT_DOUBLE_EQ(s.mean_detection_latency, 2.0);  // (4 + 0) / 2
  EXPECT_EQ(s.strikes, 1u);
  EXPECT_TRUE(s.strikes_time_ordered);
}

TEST(Summarize, HostsAreKeyedPerRun) {
  // The same node id in different runs is a different host.
  const std::string text =
      "{\"t\":1,\"run\":0,\"kind\":\"infection\",\"node\":1}\n"
      "{\"t\":2,\"run\":1,\"kind\":\"quarantine_transition\",\"node\":1,"
      "\"from\":\"suspected\",\"to\":\"quarantined\",\"offenses\":1}\n";
  const NdjsonSummary s = summarize_ndjson(text);
  EXPECT_EQ(s.runs, 2u);
  EXPECT_EQ(s.infected_hosts, 1u);
  EXPECT_EQ(s.quarantined_hosts, 1u);
  EXPECT_EQ(s.detected_hosts, 0u);
  EXPECT_EQ(s.false_positive_hosts, 1u);
}

TEST(Summarize, MalformedLinesAreCountedNotFatal) {
  const std::string text =
      "not json at all\n"
      "{\"t\":1}\n"  // missing kind
      "\n"           // blank lines are skipped entirely
      "{\"t\":1,\"kind\":\"infection\",\"node\":1}\n";
  const NdjsonSummary s = summarize_ndjson(text);
  EXPECT_EQ(s.malformed_lines, 2u);
  EXPECT_EQ(s.total_events, 1u);
  EXPECT_EQ(s.infected_hosts, 1u);
}

TEST(Summarize, OutOfOrderStrikesAreFlagged) {
  const std::string text =
      "{\"t\":5,\"run\":0,\"kind\":\"detector_strike\",\"node\":1,"
      "\"strikes\":1}\n"
      "{\"t\":3,\"run\":0,\"kind\":\"detector_strike\",\"node\":2,"
      "\"strikes\":1}\n";
  EXPECT_FALSE(summarize_ndjson(text).strikes_time_ordered);
  // Ordering is tracked per run: interleaved runs stay ordered.
  const std::string per_run =
      "{\"t\":5,\"run\":0,\"kind\":\"detector_strike\",\"node\":1,"
      "\"strikes\":1}\n"
      "{\"t\":3,\"run\":1,\"kind\":\"detector_strike\",\"node\":2,"
      "\"strikes\":1}\n";
  EXPECT_TRUE(summarize_ndjson(per_run).strikes_time_ordered);
}

TEST(Summarize, RoundTripsThroughToJson) {
  const std::string text =
      "{\"t\":1,\"kind\":\"infection\",\"node\":1}\n";
  const campaign::JsonValue j = summarize_ndjson(text).to_json();
  EXPECT_EQ(j.find("total_events")->as_uint(), 1u);
  EXPECT_EQ(j.find("events_by_kind")->find("infection")->as_uint(), 1u);
}

}  // namespace
}  // namespace dq::obs
