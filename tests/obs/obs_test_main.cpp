// Custom main for dq_obs_test: strips --update-golden (regenerates the
// NDJSON fixture under tests/data/golden) before handing the command
// line to gtest. Mirrors dq_golden_test's contract.
#include <gtest/gtest.h>

#include <cstring>

#include "golden_flag.hpp"

namespace dq::obs_test {
bool g_update_golden = false;
}  // namespace dq::obs_test

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) {
      dq::obs_test::g_update_golden = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
