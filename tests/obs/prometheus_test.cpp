#include "obs/prometheus.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"

namespace dq::obs {
namespace {

/// Renders a registry's full snapshot to Prometheus text.
std::string render(MetricsRegistry& reg) {
  return prometheus_render(reg.snapshot(/*deterministic_only=*/false));
}

TEST(PrometheusRender, CountersAndGaugesWithSanitizedNames) {
  MetricsRegistry reg;
  reg.counter("serve.flows_ingested").add(42);
  reg.gauge("serve.rss_bytes", Determinism::kWallClock).set(12345.0);

  const std::string text = render(reg);
  EXPECT_NE(text.find("# TYPE serve_flows_ingested counter"),
            std::string::npos);
  EXPECT_NE(text.find("serve_flows_ingested 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_rss_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("serve_rss_bytes 12345\n"), std::string::npos);
}

TEST(PrometheusRender, LabeledMetricsBecomeQuotedLabelSets) {
  MetricsRegistry reg;
  reg.gauge(labeled("serve.shard_queue_depth", {{"shard", "3"}}),
            Determinism::kWallClock)
      .set(7.0);

  const std::string text = render(reg);
  EXPECT_NE(text.find("serve_shard_queue_depth{shard=\"3\"} 7\n"),
            std::string::npos);
  // The TYPE line names the base family, without labels.
  EXPECT_NE(text.find("# TYPE serve_shard_queue_depth gauge"),
            std::string::npos);
}

TEST(PrometheusRender, OneTypeLinePerLabeledFamily) {
  MetricsRegistry reg;
  for (int s = 0; s < 3; ++s)
    reg.gauge(labeled("q.depth", {{"shard", std::to_string(s)}}),
              Determinism::kWallClock)
        .set(s);

  const std::string text = render(reg);
  std::size_t count = 0;
  for (std::size_t pos = text.find("# TYPE q_depth gauge");
       pos != std::string::npos;
       pos = text.find("# TYPE q_depth gauge", pos + 1))
    ++count;
  EXPECT_EQ(count, 1u);
}

TEST(PrometheusRender, HistogramsExposeCumulativeBucketsAndQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("serve.decision_latency_ns");
  h.record(3);   // bucket [2,3]
  h.record(3);
  h.record(100);  // bucket [64,127]

  const std::string text = render(reg);
  EXPECT_NE(text.find("# TYPE serve_decision_latency_ns histogram"),
            std::string::npos);
  // Buckets are cumulative and end with +Inf == count.
  EXPECT_NE(text.find("serve_decision_latency_ns_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_decision_latency_ns_bucket{le=\"127\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_decision_latency_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_decision_latency_ns_sum 106\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_decision_latency_ns_count 3\n"),
            std::string::npos);
  // Quantile gauges derived from the log-2 buckets.
  EXPECT_NE(text.find("serve_decision_latency_ns_quantile{q=\"0.5\"} 3\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("serve_decision_latency_ns_quantile{q=\"0.999\"} 127\n"),
      std::string::npos);
}

TEST(SnapshotHistogramQuantile, MatchesLiveHistogramAndHandlesEdges) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  for (int i = 0; i < 90; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(5000);

  const campaign::JsonValue snap = reg.snapshot(false);
  const campaign::JsonValue& hist = snap.at("histograms").at("lat");
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(snapshot_histogram_quantile(hist, q), histogram_quantile(h, q))
        << "q=" << q;
  EXPECT_EQ(snapshot_histogram_quantile(hist, std::nan("")),
            histogram_quantile(h, 0.0));

  // Empty histogram snapshot → 0 for any q.
  reg.histogram("empty");
  const campaign::JsonValue snap2 = reg.snapshot(false);
  EXPECT_EQ(
      snapshot_histogram_quantile(snap2.at("histograms").at("empty"), 0.99),
      0u);

  // Malformed input degrades to 0 instead of throwing (the function is
  // noexcept; callers feed it parsed NDJSON from disk).
  EXPECT_EQ(snapshot_histogram_quantile(campaign::JsonValue::object(), 0.5),
            0u);
}

/// Fetches `request` from 127.0.0.1:`port` and returns the raw
/// response bytes (empty on connect failure).
std::string http_fetch(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, n);
  ::close(fd);
  return response;
}

TEST(PromHttpListener, ServesMetricsOnEphemeralPort) {
  MetricsRegistry reg;
  reg.counter("hits").add(5);
  PromHttpListener listener("127.0.0.1:0", [&reg] { return render(reg); });
  ASSERT_NE(listener.port(), 0);

  const std::string response = http_fetch(
      listener.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("hits 5\n"), std::string::npos);

  // The render callback is re-invoked per scrape: updates are visible.
  reg.counter("hits").add(1);
  const std::string again = http_fetch(
      listener.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(again.find("hits 6\n"), std::string::npos);
}

TEST(PromHttpListener, UnknownPathIs404) {
  PromHttpListener listener("127.0.0.1:0", [] { return std::string(); });
  const std::string response = http_fetch(
      listener.port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("404"), std::string::npos);
}

TEST(PromHttpListener, BadAddressThrows) {
  EXPECT_THROW(
      PromHttpListener("not-an-address:-1", [] { return std::string(); }),
      std::runtime_error);
}

}  // namespace
}  // namespace dq::obs
