#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/json.hpp"

namespace dq::obs {
namespace {

TEST(SpanBuffer, RecordsUntilCapacityThenCountsDrops) {
  SpanBuffer buf("t", 3);
  for (int i = 0; i < 5; ++i) buf.record("phase", 10 * i, 1);
  EXPECT_EQ(buf.spans().size(), 3u);
  EXPECT_EQ(buf.dropped(), 2u);
  EXPECT_EQ(buf.capacity(), 3u);
  EXPECT_EQ(buf.track(), "t");
  // The kept spans are the first three, in write order.
  EXPECT_EQ(buf.spans()[2].start_ns, 20u);
}

TEST(Span, NullBufferIsANoOp) {
  // The disabled path must be safe (and is the common case: every
  // instrumentation site runs with a null buffer when profiling is
  // off). Nothing observable to assert beyond "does not crash".
  const Span span(nullptr, "anything");
}

TEST(Span, ScopedTimingLandsInTheBuffer) {
  SpanBuffer buf("t", 8);
  {
    const Span span(&buf, "work");
  }
  ASSERT_EQ(buf.spans().size(), 1u);
  EXPECT_STREQ(buf.spans()[0].name, "work");
}

TEST(Profiler, TrackIsFindOrCreateWithStablePointers) {
  Profiler profiler;
  SpanBuffer* a = profiler.track("alpha");
  SpanBuffer* b = profiler.track("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(profiler.track("alpha"), a);
  EXPECT_EQ(profiler.track("beta"), b);
}

TEST(Profiler, TrackIsThreadSafe) {
  Profiler profiler;
  std::vector<SpanBuffer*> seen(8, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&profiler, &seen, t] {
      seen[static_cast<std::size_t>(t)] = profiler.track("shared");
    });
  for (std::thread& t : threads) t.join();
  for (SpanBuffer* p : seen) EXPECT_EQ(p, seen[0]);
}

TEST(Profiler, TotalsSumAcrossTracks) {
  Profiler profiler(/*capacity_per_track=*/2);
  SpanBuffer* a = profiler.track("a");
  SpanBuffer* b = profiler.track("b");
  for (int i = 0; i < 3; ++i) a->record("x", 0, 1);  // one dropped
  b->record("y", 0, 1);
  EXPECT_EQ(profiler.total_spans(), 3u);
  EXPECT_EQ(profiler.total_dropped(), 1u);
}

TEST(Profiler, ChromeTraceIsValidJsonWithMetadataAndSpans) {
  Profiler profiler;
  SpanBuffer* track = profiler.track("router");
  track->record("batch", 2'000, 1'500);
  track->record("flush", 5'000, 500);

  std::ostringstream out;
  profiler.write_chrome_trace(out);
  const campaign::JsonValue doc = campaign::JsonValue::parse(out.str());
  const campaign::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 3u);  // 1 thread_name metadata + 2 spans

  const campaign::JsonValue& meta = events->items()[0];
  EXPECT_EQ(meta.find("ph")->as_string(), "M");
  EXPECT_EQ(meta.find("name")->as_string(), "thread_name");

  // Timestamps are microseconds normalized to the earliest span.
  const campaign::JsonValue& first = events->items()[1];
  EXPECT_EQ(first.find("ph")->as_string(), "X");
  EXPECT_EQ(first.find("name")->as_string(), "batch");
  EXPECT_DOUBLE_EQ(first.find("ts")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(first.find("dur")->as_number(), 1.5);
  const campaign::JsonValue& second = events->items()[2];
  EXPECT_DOUBLE_EQ(second.find("ts")->as_number(), 3.0);
}

TEST(Profiler, AggregateGroupsByNameSortedByTotalDescending) {
  Profiler profiler;
  SpanBuffer* a = profiler.track("a");
  SpanBuffer* b = profiler.track("b");
  a->record("small", 0, 10);
  a->record("big", 0, 1'000);
  b->record("small", 0, 30);

  const std::vector<PhaseStats> stats = profiler.aggregate();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "big");
  EXPECT_EQ(stats[0].count, 1u);
  EXPECT_EQ(stats[0].total_ns, 1'000u);
  EXPECT_EQ(stats[1].name, "small");
  EXPECT_EQ(stats[1].count, 2u);
  EXPECT_EQ(stats[1].total_ns, 40u);
  EXPECT_EQ(stats[1].min_ns, 10u);
  EXPECT_EQ(stats[1].max_ns, 30u);

  const std::string table = profiler.render_table();
  EXPECT_NE(table.find("big"), std::string::npos);
  EXPECT_NE(table.find("small"), std::string::npos);
}

}  // namespace
}  // namespace dq::obs
