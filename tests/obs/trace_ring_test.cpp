#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"

namespace dq::obs {
namespace {

Event at(double time, std::uint32_t id) {
  Event e;
  e.time = time;
  e.id = id;
  return e;
}

TEST(TraceRing, KeepsNewestDropsOldest) {
  TraceRing ring(4);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(at(i, i)));
  for (std::uint32_t i = 4; i < 10; ++i) EXPECT_FALSE(ring.push(at(i, i)));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.evicted(), 6u);
  const std::vector<Event> events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and the retained window is the newest four events.
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].id, 6 + i);
}

TEST(TraceRing, ZeroCapacityDropsEverythingLoudly) {
  TraceRing ring(0);
  EXPECT_FALSE(ring.push(at(1.0, 1)));
  EXPECT_FALSE(ring.push(at(2.0, 2)));
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.evicted(), 2u);
}

TEST(TraceRing, ClearResetsEviction) {
  TraceRing ring(1);
  ring.push(at(1.0, 1));
  ring.push(at(2.0, 2));
  EXPECT_EQ(ring.evicted(), 1u);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.evicted(), 0u);
  EXPECT_TRUE(ring.push(at(3.0, 3)));
}

TEST(Sink, NullSinkIsInert) {
  Sink s;
  EXPECT_FALSE(static_cast<bool>(s));
  s.emit(at(1.0, 1));  // must not crash
}

TEST(Sink, EmitCountsEveryDroppedEvent) {
  // Ring overflow must never be silent: each eviction increments the
  // trace.dropped counter.
  MetricsRegistry reg;
  Counter& dropped = reg.counter("trace.dropped", Determinism::kWallClock);
  TraceRing ring(2);
  Sink s;
  s.metrics = &reg;
  s.trace = &ring;
  s.trace_dropped = &dropped;
  for (std::uint32_t i = 0; i < 5; ++i) s.emit(at(i, i));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(dropped.value(), 3u);
  EXPECT_EQ(ring.evicted(), 3u);
}

TEST(MultiRunSink, DroppedCounterStaysOutOfDeterministicSnapshots) {
  // The ring capacity is an observability knob, not simulation config,
  // so eviction counts must not leak into cached artifacts.
  MultiRunSink sink(1, /*ring_capacity=*/1);
  Sink s = sink.run_sink(0);
  s.emit(at(0.0, 0));
  s.emit(at(1.0, 1));
  const campaign::JsonValue full = sink.metrics().snapshot(false);
  ASSERT_NE(full.find("counters")->find("trace.dropped"), nullptr);
  EXPECT_EQ(full.find("counters")->find("trace.dropped")->as_uint(), 1u);
  const campaign::JsonValue det = sink.metrics().snapshot(true);
  EXPECT_EQ(det.find("counters")->find("trace.dropped"), nullptr);
}

TEST(MultiRunSink, MetricsOnlyModeHasNoRings) {
  MultiRunSink sink(3, /*ring_capacity=*/0);
  EXPECT_FALSE(sink.tracing());
  EXPECT_EQ(sink.runs(), 3u);
  Sink s = sink.run_sink(1);
  EXPECT_NE(s.metrics, nullptr);
  EXPECT_EQ(s.trace, nullptr);
  s.emit(at(1.0, 1));  // dropped silently: no ring was requested
  EXPECT_EQ(sink.metrics().counter("trace.dropped").value(), 0u);
  EXPECT_TRUE(sink.export_ndjson().empty());
}

TEST(MultiRunSink, NdjsonConcatenatesRunsInIndexOrder) {
  MultiRunSink sink(2, 8);
  Event e0 = at(1.0, 10);
  Event e1 = at(0.5, 20);
  sink.run_sink(1).emit(e1);  // emitted first, but run 1 prints second
  sink.run_sink(0).emit(e0);
  EXPECT_EQ(sink.export_ndjson(),
            "{\"t\":1,\"run\":0,\"kind\":\"infection\",\"node\":10}\n"
            "{\"t\":0.5,\"run\":1,\"kind\":\"infection\",\"node\":20}\n");
}

}  // namespace
}  // namespace dq::obs
