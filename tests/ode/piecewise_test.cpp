#include "ode/piecewise.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dq::ode {
namespace {

// Growth then decay: y' = +y for t < 1, y' = -y after.
PiecewiseSystem make_switch() {
  Regime grow{[](double, const State& y, State& dydt) { dydt[0] = y[0]; },
              1.0};
  Regime decay{[](double, const State& y, State& dydt) { dydt[0] = -y[0]; },
               0.0};
  return PiecewiseSystem({grow, decay});
}

TEST(PiecewiseSystem, RejectsEmptyAndUnordered) {
  EXPECT_THROW(PiecewiseSystem({}), std::invalid_argument);
  Regime a{[](double, const State&, State& d) { d[0] = 0.0; }, 2.0};
  Regime b{[](double, const State&, State& d) { d[0] = 0.0; }, 1.0};
  Regime c{[](double, const State&, State& d) { d[0] = 0.0; }, 0.0};
  EXPECT_THROW(PiecewiseSystem({a, b, c}), std::invalid_argument);
}

TEST(PiecewiseSystem, MatchesClosedFormAcrossSwitch) {
  const PiecewiseSystem system = make_switch();
  const std::vector<double> times = {0.0, 0.5, 1.0, 1.5, 2.0};
  const std::vector<double> ys = system.sample({1.0}, times, 0);
  EXPECT_NEAR(ys[1], std::exp(0.5), 1e-7);
  EXPECT_NEAR(ys[2], std::exp(1.0), 1e-7);
  EXPECT_NEAR(ys[3], std::exp(1.0) * std::exp(-0.5), 1e-7);
  EXPECT_NEAR(ys[4], std::exp(1.0) * std::exp(-1.0), 1e-7);
}

TEST(PiecewiseSystem, GridStartingAfterSwitch) {
  const PiecewiseSystem system = make_switch();
  // Start the grid at t=1.5 with the matching state.
  const double y15 = std::exp(1.0) * std::exp(-0.5);
  const std::vector<double> ys = system.sample({y15}, {1.5, 2.0}, 0);
  EXPECT_NEAR(ys[1], std::exp(1.0) * std::exp(-1.0), 1e-7);
}

TEST(PiecewiseSystem, SingleRegimeBehavesLikePlainOde) {
  Regime only{[](double, const State& y, State& d) { d[0] = -y[0]; }, 0.0};
  const PiecewiseSystem system({only});
  const std::vector<double> ys = system.sample({1.0}, {0.0, 1.0}, 0);
  EXPECT_NEAR(ys[1], std::exp(-1.0), 1e-7);
}

TEST(PiecewiseSystem, GridValidation) {
  const PiecewiseSystem system = make_switch();
  EXPECT_THROW(system.sample({1.0}, {}, 0), std::invalid_argument);
  EXPECT_THROW(system.sample({1.0}, {1.0, 1.0}, 0), std::invalid_argument);
}

TEST(FindCrossingTime, ExponentialGrowthCrossing) {
  const Derivative grow = [](double, const State& y, State& dydt) {
    dydt[0] = y[0];
  };
  // y = e^t reaches 10 at t = ln(10).
  const double t = find_crossing_time(grow, {1.0}, 0.0, 5.0, 0, 10.0);
  EXPECT_NEAR(t, std::log(10.0), 1e-4);
}

TEST(FindCrossingTime, AlreadyAboveLevel) {
  const Derivative grow = [](double, const State& y, State& dydt) {
    dydt[0] = y[0];
  };
  EXPECT_DOUBLE_EQ(
      find_crossing_time(grow, {5.0}, 0.0, 1.0, 0, 2.0), 0.0);
}

TEST(FindCrossingTime, NeverReached) {
  const Derivative decay = [](double, const State& y, State& dydt) {
    dydt[0] = -y[0];
  };
  EXPECT_LT(find_crossing_time(decay, {1.0}, 0.0, 5.0, 0, 2.0), 0.0);
}

TEST(FindCrossingTime, BadRange) {
  const Derivative decay = [](double, const State& y, State& dydt) {
    dydt[0] = -y[0];
  };
  EXPECT_THROW(find_crossing_time(decay, {1.0}, 1.0, 1.0, 0, 2.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dq::ode
