#include "ode/solvers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dq::ode {
namespace {

// dy/dt = -y, y(0) = 1: y(t) = e^{-t}.
const Derivative kDecay = [](double, const State& y, State& dydt) {
  dydt[0] = -y[0];
};

// Logistic with rate 1 and N = 1: y' = y(1-y).
const Derivative kLogistic = [](double, const State& y, State& dydt) {
  dydt[0] = y[0] * (1.0 - y[0]);
};

double logistic_exact(double y0, double t) {
  const double c = 1.0 / y0 - 1.0;
  return 1.0 / (1.0 + c * std::exp(-t));
}

TEST(EulerStepper, FirstOrderAccuracy) {
  // Halving the step should roughly halve the error.
  auto solve = [](double dt) {
    EulerStepper stepper;
    State y = {1.0};
    integrate_fixed(stepper, kDecay, y, 0.0, 1.0, dt, Observer{});
    return std::abs(y[0] - std::exp(-1.0));
  };
  const double e1 = solve(0.01);
  const double e2 = solve(0.005);
  EXPECT_NEAR(e1 / e2, 2.0, 0.2);
}

TEST(Rk4Stepper, FourthOrderAccuracy) {
  auto solve = [](double dt) {
    Rk4Stepper stepper;
    State y = {1.0};
    integrate_fixed(stepper, kDecay, y, 0.0, 1.0, dt, Observer{});
    return std::abs(y[0] - std::exp(-1.0));
  };
  const double e1 = solve(0.1);
  const double e2 = solve(0.05);
  EXPECT_NEAR(e1 / e2, 16.0, 4.0);
}

TEST(IntegrateFixed, ObserverSeesEndpoints) {
  Rk4Stepper stepper;
  State y = {1.0};
  double first = -1.0, last = -1.0;
  std::size_t calls = 0;
  integrate_fixed(stepper, kDecay, y, 0.0, 1.0, 0.25,
                  [&](double t, const State&) {
                    if (calls == 0) first = t;
                    last = t;
                    ++calls;
                  });
  EXPECT_DOUBLE_EQ(first, 0.0);
  EXPECT_DOUBLE_EQ(last, 1.0);
  EXPECT_EQ(calls, 5u);
}

TEST(IntegrateFixed, FinalPartialStepLandsExactly) {
  Rk4Stepper stepper;
  State y = {1.0};
  double last = 0.0;
  integrate_fixed(stepper, kDecay, y, 0.0, 1.0, 0.3,
                  [&](double t, const State&) { last = t; });
  EXPECT_DOUBLE_EQ(last, 1.0);
}

TEST(IntegrateFixed, Errors) {
  Rk4Stepper stepper;
  State y = {1.0};
  EXPECT_THROW(
      integrate_fixed(stepper, kDecay, y, 0.0, 1.0, 0.0, Observer{}),
      std::invalid_argument);
  EXPECT_THROW(
      integrate_fixed(stepper, kDecay, y, 1.0, 0.0, 0.1, Observer{}),
      std::invalid_argument);
}

TEST(IntegrateAdaptive, MatchesExponential) {
  State y = {1.0};
  integrate_adaptive(kDecay, y, 0.0, 5.0, 0.1, Tolerance{}, Observer{});
  EXPECT_NEAR(y[0], std::exp(-5.0), 1e-7);
}

TEST(IntegrateAdaptive, MatchesLogistic) {
  State y = {0.01};
  integrate_adaptive(kLogistic, y, 0.0, 10.0, 0.1, Tolerance{}, Observer{});
  EXPECT_NEAR(y[0], logistic_exact(0.01, 10.0), 1e-7);
}

TEST(IntegrateAdaptive, ZeroSpanIsNoop) {
  State y = {3.0};
  int observed = 0;
  integrate_adaptive(kDecay, y, 2.0, 2.0, 0.1, Tolerance{},
                     [&](double, const State&) { ++observed; });
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_EQ(observed, 1);
}

TEST(IntegrateAdaptive, Errors) {
  State y = {1.0};
  EXPECT_THROW(
      integrate_adaptive(kDecay, y, 1.0, 0.0, 0.1, Tolerance{}, Observer{}),
      std::invalid_argument);
  EXPECT_THROW(
      integrate_adaptive(kDecay, y, 0.0, 1.0, 0.0, Tolerance{}, Observer{}),
      std::invalid_argument);
}

TEST(IntegrateAdaptive, TighterToleranceMoreAccurate) {
  auto solve = [](double rel) {
    State y = {0.001};
    Tolerance tol;
    tol.rel = rel;
    tol.abs = rel * 0.1;
    integrate_adaptive(kLogistic, y, 0.0, 12.0, 1.0, tol, Observer{});
    return std::abs(y[0] - logistic_exact(0.001, 12.0));
  };
  EXPECT_LE(solve(1e-10), solve(1e-4) + 1e-12);
}

TEST(Sample, ReturnsComponentOnGrid) {
  const std::vector<double> times = {0.0, 0.5, 1.0, 2.0};
  const std::vector<double> ys = sample(kDecay, {1.0}, times, 0);
  ASSERT_EQ(ys.size(), 4u);
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_NEAR(ys[i], std::exp(-times[i]), 1e-7);
}

TEST(Sample, MultiComponentSystem) {
  // Harmonic oscillator: x'' = -x as (x, v).
  const Derivative osc = [](double, const State& y, State& dydt) {
    dydt[0] = y[1];
    dydt[1] = -y[0];
  };
  const std::vector<double> times = {0.0, 3.14159265358979323846};
  const std::vector<State> states = sample_states(osc, {1.0, 0.0}, times);
  EXPECT_NEAR(states[1][0], -1.0, 1e-6);
  EXPECT_NEAR(states[1][1], 0.0, 1e-6);
}

TEST(SampleStates, GridValidation) {
  EXPECT_THROW(sample_states(kDecay, {1.0}, {}), std::invalid_argument);
  EXPECT_THROW(sample_states(kDecay, {1.0}, {0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(sample_states(kDecay, {1.0}, {1.0, 0.5}),
               std::invalid_argument);
}

TEST(DormandPrince, RejectsThenShrinksStep) {
  DormandPrince45 stepper;
  State y = {1.0};
  // Stiff-ish large first step with tight tolerance should be rejected.
  Tolerance tol;
  tol.abs = 1e-14;
  tol.rel = 1e-14;
  double next = 0.0;
  const Derivative fast = [](double, const State& y, State& dydt) {
    dydt[0] = -50.0 * y[0];
  };
  const bool accepted = stepper.try_step(fast, 0.0, 1.0, y, tol, next);
  EXPECT_FALSE(accepted);
  EXPECT_LT(next, 1.0);
  EXPECT_DOUBLE_EQ(y[0], 1.0);  // state untouched on rejection
}

}  // namespace
}  // namespace dq::ode
