// Memory-budget assertion for the shared-bitmap detector backend: ten
// million tracked hosts must fit detector state in single-digit bytes
// per host and hold a fixed peak-RSS budget while absorbing traffic.
// (The exact backend's DetectorState alone is 24 B/host before
// allocator overhead — the compact store is what makes 10^7 hosts
// feasible. QuarantineEngine's policy records are a separate slab,
// unchanged by the backend choice, so this test measures the store.)
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "quarantine/compact_store.hpp"
#include "stats/hash.hpp"

namespace dq::quarantine {
namespace {

/// Peak RSS (VmHWM) in bytes; 0 when /proc is unavailable.
std::size_t peak_rss() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  std::size_t peak = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      peak = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10)) *
             1024;
      break;
    }
  }
  std::fclose(f);
  return peak;
}

TEST(CompactScale, TenMillionHostsWithinMemoryBudget) {
  constexpr std::size_t kHosts = 10'000'000;
  // ~76 MB of pools+cells at the default geometry; the budget leaves
  // headroom for gtest, the allocator, and sanitizer shadow.
  constexpr std::size_t kBudgetBytes = 512ull << 20;

  DetectorSettings settings;
  settings.window = 5.0;
  settings.contact_rate_threshold = 0.0;
  settings.distinct_dest_threshold = 0.0;
  settings.failure_ratio_threshold = 0.7;
  settings.failure_min_attempts = 3;
  CompactSettings compact;  // defaults: 256-host blocks, 6 bits, v=64

  CompactEstimatorStore store(kHosts, settings, compact);
  EXPECT_LE(store.bytes_per_host(), 8.0);
  EXPECT_LE(store.memory_bytes(), kHosts * 8ull);

  // Touch the store for real: a scanning minority plus background
  // chatter across the full host range, five window rolls.
  std::uint64_t strikes = 0;
  for (std::uint64_t i = 0; i < 4'000'000; ++i) {
    const std::uint64_t r = mix64(i * 0x9e3779b97f4a7c15ULL + 1);
    const auto host = static_cast<std::uint32_t>(r % kHosts);
    const bool worm = host % 97 == 0;
    const double now = static_cast<double>(i) * 6.25e-6;  // 25 s total
    const std::uint64_t dest = worm ? mix64(r) : host % 1024;
    const ObservationOutcome out = store.observe(host, now, dest, worm);
    strikes += out.strike ? 1 : 0;
  }
  EXPECT_GT(strikes, 0u);  // the detector actually ran at scale

  const std::size_t peak = peak_rss();
  if (peak == 0) GTEST_SKIP() << "VmHWM unavailable";
  EXPECT_LT(peak, kBudgetBytes)
      << "peak RSS " << peak / (1 << 20) << " MiB over budget";
}

}  // namespace
}  // namespace dq::quarantine
