#include "quarantine/detectors.hpp"

#include <gtest/gtest.h>

namespace dq::quarantine {
namespace {

DetectorSettings contact_only(double threshold) {
  DetectorSettings s;
  s.window = 5.0;
  s.contact_rate_threshold = threshold;
  s.distinct_dest_threshold = 0.0;
  s.failure_ratio_threshold = 0.0;
  return s;
}

TEST(HostDetector, StrikesInsideTheWindowOnceThresholdCrossed) {
  const DetectorSettings s = contact_only(3.0);
  HostDetector d;
  bool struck = false;
  for (int i = 0; i < 4; ++i)
    struck = d.observe(s, 1.0, static_cast<std::uint64_t>(i), false).strike;
  // The 4th contact exceeds "more than 3 per window" mid-window.
  EXPECT_TRUE(struck);
}

TEST(HostDetector, AtMostOneStrikePerWindow) {
  const DetectorSettings s = contact_only(1.0);
  HostDetector d;
  int strikes = 0;
  for (int i = 0; i < 10; ++i)
    strikes += d.observe(s, 2.0, static_cast<std::uint64_t>(i), false).strike;
  EXPECT_EQ(strikes, 1);
}

TEST(HostDetector, WindowRolloverResetsCounters) {
  const DetectorSettings s = contact_only(100.0);
  HostDetector d;
  for (int i = 0; i < 7; ++i) d.observe(s, 1.0, 1, false);
  EXPECT_EQ(d.window_contacts(), 7u);
  d.observe(s, 6.0, 1, true);  // next window: [5,10)
  EXPECT_EQ(d.window_contacts(), 1u);
  EXPECT_EQ(d.window_failures(), 1u);
}

TEST(HostDetector, ReportsInterveningCleanWindows) {
  const DetectorSettings s = contact_only(100.0);
  HostDetector d;
  d.observe(s, 0.0, 1, false);  // window 0, never flagged
  const ObservationOutcome o = d.observe(s, 26.0, 1, false);  // window 5
  EXPECT_EQ(o.clean_windows, 5u);
}

TEST(HostDetector, FlaggedWindowIsNotCountedClean) {
  const DetectorSettings s = contact_only(1.0);
  HostDetector d;
  d.observe(s, 0.0, 1, false);
  EXPECT_TRUE(d.observe(s, 0.1, 2, false).strike);  // window 0 flagged
  const ObservationOutcome o = d.observe(s, 5.5, 3, false);  // window 1
  EXPECT_EQ(o.clean_windows, 0u);
}

TEST(HostDetector, DistinctEstimateTracksUniqueKeysNotRepeats) {
  DetectorSettings s = contact_only(0.0);
  s.distinct_dest_threshold = 1000.0;  // keep it from striking
  HostDetector repeat, unique;
  for (int i = 0; i < 30; ++i) {
    repeat.observe(s, 1.0, 42, false);
    unique.observe(s, 1.0, static_cast<std::uint64_t>(i) * 7919, false);
  }
  EXPECT_NEAR(repeat.distinct_estimate(), 1.0, 0.1);
  // Linear counting over 64 buckets: 30 keys estimate within ~25%.
  EXPECT_GT(unique.distinct_estimate(), 22.0);
  EXPECT_LT(unique.distinct_estimate(), 40.0);
}

TEST(HostDetector, FailureRatioRespectsMinimumAttempts) {
  DetectorSettings s = contact_only(0.0);
  s.failure_ratio_threshold = 0.5;
  s.failure_min_attempts = 3;
  HostDetector d;
  EXPECT_FALSE(d.observe(s, 1.0, 1, true).strike);
  EXPECT_FALSE(d.observe(s, 1.1, 2, true).strike);  // 2/2 but < 3 attempts
  EXPECT_TRUE(d.observe(s, 1.2, 3, true).strike);   // 3/3 >= 0.5
}

TEST(HostDetector, ResetClearsAllWindowState) {
  const DetectorSettings s = contact_only(2.0);
  HostDetector d;
  for (int i = 0; i < 3; ++i) d.observe(s, 1.0, 1, true);
  d.reset();
  EXPECT_EQ(d.window_contacts(), 0u);
  EXPECT_EQ(d.window_failures(), 0u);
  // After reset the same burst strikes again (flag was cleared too).
  bool struck = false;
  for (int i = 0; i < 3; ++i)
    struck = d.observe(s, 1.0, 1, false).strike || struck;
  EXPECT_TRUE(struck);
}

}  // namespace
}  // namespace dq::quarantine
