#include "quarantine/engine.hpp"

#include <gtest/gtest.h>

namespace dq::quarantine {
namespace {

/// Contact-rate-only config: more than `limit` contacts in a 5-tick
/// window is suspicious.
QuarantineConfig make_config(double limit = 3.0) {
  QuarantineConfig c;
  c.enabled = true;
  c.detector.window = 5.0;
  c.detector.contact_rate_threshold = limit;
  c.detector.distinct_dest_threshold = 0.0;
  c.detector.failure_ratio_threshold = 0.0;
  c.policy.strikes_to_quarantine = 1;
  c.policy.base_period = 10.0;
  c.policy.escalation = 2.0;
  c.policy.max_period = 35.0;
  return c;
}

void burst(QuarantineEngine& e, std::uint32_t host, double t, int n) {
  for (int i = 0; i < n; ++i)
    e.observe(host, static_cast<std::uint64_t>(i), t, false);
}

TEST(QuarantineEngine, ValidatesConfigAndHostCount) {
  QuarantineConfig c = make_config();
  EXPECT_THROW(QuarantineEngine(0, c), std::invalid_argument);
  c.detector.window = 0.0;
  EXPECT_THROW(QuarantineEngine(4, c), std::invalid_argument);
  c = make_config();
  c.policy.escalation = 0.5;
  EXPECT_THROW(QuarantineEngine(4, c), std::invalid_argument);
  c = make_config();
  c.detector.contact_rate_threshold = 0.0;  // no detector left enabled
  EXPECT_THROW(QuarantineEngine(4, c), std::invalid_argument);
}

TEST(QuarantineEngine, WalksFreeSuspectedQuarantined) {
  QuarantineConfig c = make_config();
  c.policy.strikes_to_quarantine = 2;
  QuarantineEngine e(2, c);

  EXPECT_EQ(e.state(0), HostQState::kFree);
  burst(e, 0, 1.0, 4);  // first strike
  EXPECT_EQ(e.state(0), HostQState::kSuspected);
  EXPECT_EQ(e.record(0).strikes, 1u);
  burst(e, 0, 6.0, 4);  // second strike, next window
  EXPECT_EQ(e.state(0), HostQState::kQuarantined);
  EXPECT_TRUE(e.quarantined(0));
  EXPECT_EQ(e.state(1), HostQState::kFree);  // bystander untouched
}

TEST(QuarantineEngine, ReleasesWhenThePeriodExpires) {
  QuarantineEngine e(1, make_config());
  burst(e, 0, 1.0, 4);
  ASSERT_TRUE(e.quarantined(0));
  EXPECT_EQ(e.currently_quarantined(), 1u);

  e.advance_to(10.9);  // release due at 1.0 + 10
  EXPECT_TRUE(e.quarantined(0));
  e.advance_to(11.0);
  EXPECT_EQ(e.state(0), HostQState::kFree);
  EXPECT_EQ(e.currently_quarantined(), 0u);
  EXPECT_DOUBLE_EQ(e.record(0).quarantine_time, 10.0);
}

TEST(QuarantineEngine, EscalatesRepeatOffendersUpToTheCap) {
  QuarantineEngine e(1, make_config());
  // Offense periods: 10, 20, 35 (40 capped at max_period 35).
  double t = 0.0;
  const double expected[] = {10.0, 20.0, 35.0};
  for (const double period : expected) {
    burst(e, 0, t, 4);
    ASSERT_TRUE(e.quarantined(0));
    EXPECT_DOUBLE_EQ(e.record(0).release_time - e.record(0).quarantine_start,
                     period);
    t = e.record(0).release_time;
    e.advance_to(t);
    ASSERT_FALSE(e.quarantined(0));
  }
  EXPECT_EQ(e.record(0).offenses, 3u);
  EXPECT_EQ(e.quarantine_events(), 3u);
}

TEST(QuarantineEngine, IgnoresObservationsWhileQuarantined) {
  QuarantineEngine e(1, make_config());
  burst(e, 0, 1.0, 4);
  ASSERT_TRUE(e.quarantined(0));
  burst(e, 0, 2.0, 50);  // an isolated host generates no observations
  EXPECT_EQ(e.quarantine_events(), 1u);
  EXPECT_EQ(e.record(0).offenses, 1u);
}

TEST(QuarantineEngine, CleanWindowsDecayStrikesBackToFree) {
  QuarantineConfig c = make_config();
  c.policy.strikes_to_quarantine = 2;
  QuarantineEngine e(1, c);
  burst(e, 0, 1.0, 4);
  ASSERT_EQ(e.state(0), HostQState::kSuspected);
  // One quiet contact two windows later: the intervening clean window
  // decays the strike and the host returns to kFree.
  e.observe(0, 7, 11.0, false);
  EXPECT_EQ(e.state(0), HostQState::kFree);
  EXPECT_EQ(e.record(0).strikes, 0u);
}

TEST(QuarantineEngine, PenaltyIsBoundedPerOffense) {
  // The dynamic-quarantine bargain: however wild one burst looks, it
  // costs exactly one quarantine period — a host that then behaves is
  // never charged again.
  QuarantineEngine e(1, make_config());
  burst(e, 0, 1.0, 500);  // an extremely loud single window
  ASSERT_TRUE(e.quarantined(0));
  e.advance_to(11.0);
  ASSERT_FALSE(e.quarantined(0));
  // A long quiet life afterwards: one contact per window, never struck.
  for (double t = 12.0; t < 200.0; t += 5.0) e.observe(0, 1, t, false);
  e.advance_to(200.0);
  EXPECT_EQ(e.record(0).offenses, 1u);
  EXPECT_DOUBLE_EQ(e.quarantine_time(0, 200.0), 10.0);
}

TEST(QuarantineEngine, ReportSplitsTargetsAndBenignHosts) {
  QuarantineEngine e(3, make_config());
  burst(e, 0, 4.0, 4);  // target, quarantined at t=4
  burst(e, 1, 6.0, 4);  // benign, quarantined at t=6 (false positive)
  // Host 2 stays clean.
  const QuarantineReport r = e.report({2.0, -1.0, -1.0}, 8.0);
  EXPECT_EQ(r.target_hosts, 1u);
  EXPECT_EQ(r.benign_hosts, 2u);
  EXPECT_DOUBLE_EQ(r.detection_rate, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_detection_latency, 2.0);  // 4 - 2
  EXPECT_DOUBLE_EQ(r.false_positive_hosts, 1.0);
  EXPECT_DOUBLE_EQ(r.false_positive_rate, 0.5);
  EXPECT_DOUBLE_EQ(r.benign_quarantine_time, 2.0);  // open interval 6->8
  EXPECT_DOUBLE_EQ(r.quarantine_events, 2.0);
}

TEST(QuarantineEngine, ReportRejectsMismatchedLabels) {
  QuarantineEngine e(3, make_config());
  EXPECT_THROW(e.report({1.0, 2.0}, 5.0), std::invalid_argument);
}

TEST(QuarantineEngine, AverageReportsIsPointwiseMean) {
  QuarantineReport a, b;
  a.target_hosts = b.target_hosts = 10;
  a.benign_hosts = b.benign_hosts = 90;
  a.detected_targets = 8.0;
  b.detected_targets = 10.0;
  a.detection_rate = 0.8;
  b.detection_rate = 1.0;
  a.mean_detection_latency = 3.0;
  b.mean_detection_latency = -1.0;  // run with no detections
  a.benign_quarantine_time = 4.0;
  b.benign_quarantine_time = 0.0;
  const QuarantineReport m = average_quarantine_reports({a, b});
  EXPECT_DOUBLE_EQ(m.detected_targets, 9.0);
  EXPECT_DOUBLE_EQ(m.detection_rate, 0.9);
  // Latency averages only over runs that detected something.
  EXPECT_DOUBLE_EQ(m.mean_detection_latency, 3.0);
  EXPECT_DOUBLE_EQ(m.benign_quarantine_time, 2.0);
  EXPECT_THROW(average_quarantine_reports({}), std::invalid_argument);
}

}  // namespace
}  // namespace dq::quarantine
