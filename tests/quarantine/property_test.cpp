// Property tests for the streaming per-host detectors.
//
// Two families:
//   * the 64-bucket linear-counting sketch stays within the theoretical
//     error envelope of its estimator versus an exact std::set count,
//     across 1..500 distinct destinations and 64 RNG seeds;
//   * the windowed detector state (contacts, failures, distinct
//     estimate) is invariant to the order events arrive within a
//     window — every counter is a sum or a bitwise OR. The failure-
//     ratio *strike* may fire earlier or later depending on order
//     (the ratio can transiently cross the threshold on a prefix),
//     but the latch admits at most one strike per window, and a
//     final window state over the threshold guarantees exactly one
//     strike under every ordering — at latest on the last event.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "quarantine/compact_store.hpp"
#include "quarantine/detectors.hpp"
#include "stats/rng.hpp"

namespace dq::quarantine {
namespace {

/// All thresholds disabled: observations only accumulate window state.
DetectorSettings passive_settings() {
  DetectorSettings s;
  s.window = 5.0;
  s.contact_rate_threshold = 0.0;
  s.distinct_dest_threshold = 0.0;
  s.failure_ratio_threshold = 0.0;
  return s;
}

/// Theoretical standard deviation of the linear-counting estimate for
/// n distinct keys over m buckets: sqrt(m (e^t − t − 1)), t = n/m
/// (Whang, Vander-Zanden & Taylor 1990, Eq. 4.4).
double linear_counting_sigma(double n, double m) {
  const double t = n / m;
  return std::sqrt(m * (std::exp(t) - t - 1.0));
}

TEST(SketchProperty, EstimateWithinTheoreticalErrorBound) {
  constexpr double kBuckets = 64.0;
  const std::vector<std::size_t> sizes = {1,  2,  3,   5,   8,   13,  21,
                                          34, 55, 89,  144, 233, 377, 500};
  for (std::size_t n : sizes) {
    const double sigma = linear_counting_sigma(static_cast<double>(n),
                                               kBuckets);
    double total_error = 0.0;
    std::size_t unsaturated = 0;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
      Rng rng(0x9e3779b97f4a7c15ULL * (seed + 1) + n);
      std::set<std::uint64_t> exact;
      HostDetector detector;
      const DetectorSettings settings = passive_settings();
      while (exact.size() < n) {
        const std::uint64_t key = rng.next_u64();
        if (!exact.insert(key).second) continue;
        detector.observe(settings, 0.5, key, false);
      }
      const double estimate = detector.distinct_estimate();
      if (estimate >= 1e9) {
        // Saturated sketch: all 64 buckets occupied, which needs at
        // least one distinct key per bucket.
        ASSERT_GE(exact.size(), 64u)
            << "sketch saturated with only " << exact.size() << " keys";
        continue;
      }
      ++unsaturated;
      const double error = estimate - static_cast<double>(n);
      total_error += error;
      // Per-trial envelope: 5σ plus a unit of slack for the
      // discreteness of occupied-bucket counts at tiny n.
      EXPECT_LE(std::abs(error), 5.0 * sigma + 1.0)
          << "n=" << n << " seed=" << seed << " estimate=" << estimate;
    }
    if (unsaturated >= 32) {
      // The estimator is asymptotically unbiased: the mean error over
      // seeds must sit well inside a single trial's envelope.
      EXPECT_LE(std::abs(total_error / unsaturated), 1.5 * sigma + 1.0)
          << "n=" << n;
    }
  }
}

// ---------------------------------------------------------------------
// Three-way accuracy harness: exact std::set count vs the private
// 64-bucket linear-counting sketch vs the shared-bitmap virtual
// estimate, across cardinalities 1..10^5 and pool fill factors.
//
// Per trial, one block hosts the subject (offset 0) plus `bg_hosts`
// background hosts each contributing `bg_keys` distinct destinations —
// the background drives the pool fill the noise correction must
// subtract. The error envelope is a delta-method bound on the
// outside-noise-corrected estimate n̂ = v (ln V_out − ln V_h): with
// host-zero fraction p ≈ e^{−n/v} q and outside-zero fraction q,
//
//   Var n̂ ≈ v² [ (1−p)/(v p) + (1−q)/((M−v) q) ]
//
// (binomial zero counts, log linearised). In an empty pool (q = 1)
// this reduces to v (e^{n/v} − 1) — the plain linear-counting
// envelope up to the covariance term Whang et al. subtract.

/// One shared-bitmap trial; returns the subject's attempt estimate (or
/// the failure estimate when `failed`), with the exact subject
/// cardinality written to *exact_n and the pool zeros fraction to *vm.
double compact_trial(const CompactSettings& cs, std::size_t n,
                     std::size_t bg_hosts, std::size_t bg_keys,
                     std::uint64_t seed, bool failed, double* vm) {
  const DetectorSettings settings = passive_settings();
  CompactEstimatorStore store(cs.block_hosts, settings, cs);
  Rng rng(0x9e3779b97f4a7c15ULL * (seed + 1) + n * 31 + bg_hosts);
  for (std::size_t b = 0; b < bg_hosts; ++b) {
    const auto host = static_cast<std::uint32_t>(1 + b);
    std::set<std::uint64_t> keys;
    while (keys.size() < bg_keys) {
      const std::uint64_t key = rng.next_u64();
      if (keys.insert(key).second) store.observe(host, 0.5, key, failed);
    }
  }
  std::set<std::uint64_t> keys;
  while (keys.size() < n) {
    const std::uint64_t key = rng.next_u64();
    if (keys.insert(key).second) store.observe(0, 0.5, key, failed);
  }
  // Pool zeros fraction, recovered from the estimator itself: feed a
  // fresh probe host nothing — its estimate is 0, so instead derive
  // V_m by popcounting the serialized block.
  const std::uint64_t* words = store.block_words(0);
  std::uint64_t ones = 0;
  const std::size_t pool_words = store.words_per_block() / 2;
  const std::size_t off = failed ? pool_words : 0;
  for (std::size_t i = 0; i < pool_words; ++i)
    ones += static_cast<std::uint64_t>(__builtin_popcountll(words[off + i]));
  const double m =
      static_cast<double>(cs.block_hosts) * cs.pool_bits_per_host;
  *vm = 1.0 - static_cast<double>(ones) / m;
  return failed ? store.failure_estimate(0) : store.attempt_estimate(0);
}

struct AccuracyCase {
  CompactSettings compact;
  std::vector<std::size_t> sizes;
  std::size_t bg_hosts;
  std::size_t bg_keys;
};

void run_accuracy_case(const AccuracyCase& c, bool failed_pool) {
  const double v = static_cast<double>(c.compact.virtual_bits);
  const double m = static_cast<double>(c.compact.block_hosts) *
                   c.compact.pool_bits_per_host;
  for (const std::size_t n : c.sizes) {
    double total_error = 0.0;
    double total_sigma = 0.0;
    std::size_t unsaturated = 0;
    constexpr std::uint64_t kSeeds = 12;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      double vm = 1.0;
      const double estimate =
          compact_trial(c.compact, n, c.bg_hosts, c.bg_keys, seed,
                        failed_pool, &vm);
      ASSERT_GT(vm, 0.05) << "harness drove the pool to saturation; "
                             "choose a bigger pool for n=" << n;
      if (estimate >= CompactEstimatorStore::kSaturated) {
        // All v virtual bits set: needs at least v distinct keys'
        // worth of occupancy between subject and background.
        ASSERT_GE(n + c.bg_hosts * c.bg_keys, c.compact.virtual_bits);
        continue;
      }
      ++unsaturated;
      const double error = estimate - static_cast<double>(n);
      total_error += error;
      // Delta-method sigma from the measured pool occupancy (vm as a
      // proxy for the outside-zero fraction q).
      const double ph = std::exp(-static_cast<double>(n) / v) * vm;
      const double var =
          (1.0 - ph) / (v * ph) +
          (m > v ? (1.0 - vm) / ((m - v) * vm) : 0.0);
      const double sigma = v * std::sqrt(var);
      total_sigma += sigma;
      // Per-trial envelope: 5 sigma plus discreteness slack.
      EXPECT_LE(std::abs(error), 5.0 * sigma + 2.0)
          << "v=" << v << " n=" << n << " bg=" << c.bg_hosts << "x"
          << c.bg_keys << " seed=" << seed << " estimate=" << estimate
          << " vm=" << vm;
    }
    if (unsaturated >= kSeeds / 2) {
      // The outside-region noise correction is unbiased at every fill
      // factor: the mean error over seeds (~sigma/sqrt(kSeeds) noise)
      // stays well inside one trial's envelope.
      const double mean_sigma = total_sigma / unsaturated;
      EXPECT_LE(std::abs(total_error / unsaturated), 1.2 * mean_sigma + 2.0)
          << "v=" << v << " n=" << n << " bg=" << c.bg_hosts << "x"
          << c.bg_keys;
    }
  }
}

TEST(SketchProperty, SharedBitmapTracksExactAtDefaultGeometry) {
  // The production default (v=64, 6 bits/host over 256-host blocks),
  // empty and busy blocks. Cardinalities to the sketch's useful range.
  AccuracyCase c;
  c.sizes = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144};
  c.bg_hosts = 0;
  c.bg_keys = 0;
  run_accuracy_case(c, false);
  c.bg_hosts = 64;  // quarter of the block active
  c.bg_keys = 8;
  run_accuracy_case(c, false);
}

TEST(SketchProperty, SharedBitmapTracksExactAtMidCardinality) {
  AccuracyCase c;
  c.compact.block_hosts = 64;
  c.compact.pool_bits_per_host = 256;  // M = 16384, v/M = 1/4
  c.compact.virtual_bits = 4096;
  c.sizes = {233, 500, 1000, 2000, 5000, 10000};
  c.bg_hosts = 0;
  c.bg_keys = 0;
  run_accuracy_case(c, false);
  c.bg_hosts = 16;
  c.bg_keys = 2000;  // pool roughly half full
  run_accuracy_case(c, false);
}

TEST(SketchProperty, SharedBitmapTracksExactAtHundredThousand) {
  AccuracyCase c;
  c.compact.block_hosts = 64;
  c.compact.pool_bits_per_host = 2048;  // M = 131072
  c.compact.virtual_bits = 32768;
  c.sizes = {20000, 100000};
  c.bg_hosts = 0;
  c.bg_keys = 0;
  run_accuracy_case(c, false);
  c.bg_hosts = 8;
  c.bg_keys = 20000;
  run_accuracy_case(c, false);
}

TEST(SketchProperty, SharedBitmapFailurePoolSameEnvelope) {
  // The failure pool is the same construction fed by failed contacts
  // only; it must obey the same envelope.
  AccuracyCase c;
  c.sizes = {1, 5, 21, 89};
  c.bg_hosts = 32;
  c.bg_keys = 8;
  run_accuracy_case(c, true);
}

TEST(SketchProperty, ExactLinearCountingAndSharedBitmapAgree) {
  // Direct three-way comparison at matched geometry (v = 64 for both
  // sketches): on identical key streams, the private linear count and
  // the noise-free shared-bitmap estimate must agree within their
  // common envelope of the exact count, and each other.
  const DetectorSettings settings = passive_settings();
  CompactSettings cs;  // defaults: v = 64
  for (const std::size_t n : {3u, 10u, 30u, 100u}) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      Rng rng(0xd1b54a32d192ed03ULL * (seed + 1) + n);
      HostDetector detector;
      CompactEstimatorStore store(cs.block_hosts, settings, cs);
      std::set<std::uint64_t> exact;
      while (exact.size() < n) {
        const std::uint64_t key = rng.next_u64();
        if (!exact.insert(key).second) continue;
        detector.observe(settings, 0.5, key, false);
        store.observe(0, 0.5, key, false);
      }
      const double lc = detector.distinct_estimate();
      const double sb = store.attempt_estimate(0);
      const double sigma =
          linear_counting_sigma(static_cast<double>(n), 64.0);
      if (lc < 1e9) {
        EXPECT_LE(std::abs(lc - static_cast<double>(n)), 5.0 * sigma + 1.0);
      }
      if (sb < 1e9) {
        EXPECT_LE(std::abs(sb - static_cast<double>(n)), 5.0 * sigma + 1.0);
      }
      // With the rest of the pool empty the noise term vanishes, and
      // both sketches bucket destinations as hash(d) mod 64 — the two
      // estimates are the same formula on the same zero count.
      if (lc < 1e9 && sb < 1e9) {
        EXPECT_NEAR(lc, sb, 1e-9 * (1.0 + lc))
            << "n=" << n << " seed=" << seed;
      }
    }
  }
}

struct Event {
  double time;
  std::uint64_t dest;
  bool failed;
};

/// Feeds events and returns (strikes, contacts, failures, estimate).
struct Verdict {
  std::uint64_t strikes = 0;
  std::uint32_t contacts = 0;
  std::uint32_t failures = 0;
  double estimate = 0.0;
};

Verdict feed(const DetectorSettings& settings,
             const std::vector<Event>& events) {
  HostDetector detector;
  Verdict v;
  for (const Event& e : events)
    v.strikes += detector.observe(settings, e.time, e.dest, e.failed).strike;
  v.contacts = detector.window_contacts();
  v.failures = detector.window_failures();
  v.estimate = detector.distinct_estimate();
  return v;
}

TEST(DetectorProperty, FailureRatioInvariantToReorderingWithinWindow) {
  DetectorSettings settings;
  settings.window = 5.0;
  settings.contact_rate_threshold = 0.0;
  settings.distinct_dest_threshold = 0.0;
  settings.failure_ratio_threshold = 0.5;
  settings.failure_min_attempts = 4;

  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Rng rng(0xd1b54a32d192ed03ULL + seed);
    // One window of mixed traffic: timestamps anywhere inside it,
    // failure marks drawn so some seeds cross the ratio and some
    // don't.
    std::vector<Event> events;
    const std::size_t count = 4 + static_cast<std::size_t>(rng.next_u64() % 24);
    for (std::size_t i = 0; i < count; ++i)
      events.push_back({settings.window * rng.uniform(),
                        rng.next_u64() % 40, rng.uniform() < 0.5});

    const Verdict baseline = feed(settings, events);
    // The whole-window verdict is a pure function of the final
    // counters; when it crosses the ratio, the in-stream check sees
    // that same state on the last event, so the latch must have fired
    // by then under EVERY ordering. (Strike *timing* is not
    // order-invariant: a prefix like F F S S crosses 0.5 transiently
    // even when the full window ends below it.)
    const bool final_suspicious =
        baseline.contacts >= settings.failure_min_attempts &&
        static_cast<double>(baseline.failures) >=
            settings.failure_ratio_threshold *
                static_cast<double>(baseline.contacts);
    for (int shuffle = 0; shuffle < 8; ++shuffle) {
      // Fisher–Yates with the test RNG, so every permutation is
      // reproducible from the seed.
      std::vector<Event> permuted = events;
      for (std::size_t i = permuted.size(); i > 1; --i)
        std::swap(permuted[i - 1], permuted[rng.next_u64() % i]);

      const Verdict verdict = feed(settings, permuted);
      EXPECT_EQ(verdict.contacts, baseline.contacts) << "seed=" << seed;
      EXPECT_EQ(verdict.failures, baseline.failures) << "seed=" << seed;
      EXPECT_DOUBLE_EQ(verdict.estimate, baseline.estimate)
          << "seed=" << seed;
      // The strike latch admits at most one strike per window no
      // matter the order.
      EXPECT_LE(verdict.strikes, 1u) << "seed=" << seed;
      if (final_suspicious) {
        EXPECT_EQ(verdict.strikes, 1u)
            << "seed=" << seed << " contacts=" << verdict.contacts
            << " failures=" << verdict.failures;
      }
    }
  }
}

TEST(DetectorProperty, ReorderingAcrossWindowsPreservesPerWindowStrikes) {
  DetectorSettings settings;
  settings.window = 5.0;
  settings.contact_rate_threshold = 6.0;
  settings.distinct_dest_threshold = 0.0;
  settings.failure_ratio_threshold = 0.0;

  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(0xa0761d6478bd642fULL + seed);
    // Three consecutive windows with independent loads; windows are
    // delivered in order, events inside each are permuted.
    std::vector<std::vector<Event>> windows(3);
    for (std::size_t w = 0; w < windows.size(); ++w) {
      const std::size_t count = 1 + static_cast<std::size_t>(rng.next_u64() % 12);
      for (std::size_t i = 0; i < count; ++i)
        windows[w].push_back(
            {settings.window * (static_cast<double>(w) + rng.uniform()),
             rng.next_u64() % 40, false});
    }

    auto strikes_of = [&](bool permute) {
      HostDetector detector;
      std::vector<std::uint64_t> strikes;
      std::uint64_t rotation = seed;
      for (const std::vector<Event>& window : windows) {
        std::vector<Event> batch = window;
        if (permute)
          std::rotate(batch.begin(),
                      batch.begin() + (++rotation % batch.size()),
                      batch.end());
        std::uint64_t count = 0;
        for (const Event& e : batch)
          count += detector.observe(settings, e.time, e.dest, e.failed).strike;
        strikes.push_back(count);
      }
      return strikes;
    };

    EXPECT_EQ(strikes_of(false), strikes_of(true)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace dq::quarantine
