// Property tests for the streaming per-host detectors.
//
// Two families:
//   * the 64-bucket linear-counting sketch stays within the theoretical
//     error envelope of its estimator versus an exact std::set count,
//     across 1..500 distinct destinations and 64 RNG seeds;
//   * the windowed detector state (contacts, failures, distinct
//     estimate) is invariant to the order events arrive within a
//     window — every counter is a sum or a bitwise OR. The failure-
//     ratio *strike* may fire earlier or later depending on order
//     (the ratio can transiently cross the threshold on a prefix),
//     but the latch admits at most one strike per window, and a
//     final window state over the threshold guarantees exactly one
//     strike under every ordering — at latest on the last event.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "quarantine/detectors.hpp"
#include "stats/rng.hpp"

namespace dq::quarantine {
namespace {

/// All thresholds disabled: observations only accumulate window state.
DetectorSettings passive_settings() {
  DetectorSettings s;
  s.window = 5.0;
  s.contact_rate_threshold = 0.0;
  s.distinct_dest_threshold = 0.0;
  s.failure_ratio_threshold = 0.0;
  return s;
}

/// Theoretical standard deviation of the linear-counting estimate for
/// n distinct keys over m buckets: sqrt(m (e^t − t − 1)), t = n/m
/// (Whang, Vander-Zanden & Taylor 1990, Eq. 4.4).
double linear_counting_sigma(double n, double m) {
  const double t = n / m;
  return std::sqrt(m * (std::exp(t) - t - 1.0));
}

TEST(SketchProperty, EstimateWithinTheoreticalErrorBound) {
  constexpr double kBuckets = 64.0;
  const std::vector<std::size_t> sizes = {1,  2,  3,   5,   8,   13,  21,
                                          34, 55, 89,  144, 233, 377, 500};
  for (std::size_t n : sizes) {
    const double sigma = linear_counting_sigma(static_cast<double>(n),
                                               kBuckets);
    double total_error = 0.0;
    std::size_t unsaturated = 0;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
      Rng rng(0x9e3779b97f4a7c15ULL * (seed + 1) + n);
      std::set<std::uint64_t> exact;
      HostDetector detector;
      const DetectorSettings settings = passive_settings();
      while (exact.size() < n) {
        const std::uint64_t key = rng.next_u64();
        if (!exact.insert(key).second) continue;
        detector.observe(settings, 0.5, key, false);
      }
      const double estimate = detector.distinct_estimate();
      if (estimate >= 1e9) {
        // Saturated sketch: all 64 buckets occupied, which needs at
        // least one distinct key per bucket.
        ASSERT_GE(exact.size(), 64u)
            << "sketch saturated with only " << exact.size() << " keys";
        continue;
      }
      ++unsaturated;
      const double error = estimate - static_cast<double>(n);
      total_error += error;
      // Per-trial envelope: 5σ plus a unit of slack for the
      // discreteness of occupied-bucket counts at tiny n.
      EXPECT_LE(std::abs(error), 5.0 * sigma + 1.0)
          << "n=" << n << " seed=" << seed << " estimate=" << estimate;
    }
    if (unsaturated >= 32) {
      // The estimator is asymptotically unbiased: the mean error over
      // seeds must sit well inside a single trial's envelope.
      EXPECT_LE(std::abs(total_error / unsaturated), 1.5 * sigma + 1.0)
          << "n=" << n;
    }
  }
}

struct Event {
  double time;
  std::uint64_t dest;
  bool failed;
};

/// Feeds events and returns (strikes, contacts, failures, estimate).
struct Verdict {
  std::uint64_t strikes = 0;
  std::uint32_t contacts = 0;
  std::uint32_t failures = 0;
  double estimate = 0.0;
};

Verdict feed(const DetectorSettings& settings,
             const std::vector<Event>& events) {
  HostDetector detector;
  Verdict v;
  for (const Event& e : events)
    v.strikes += detector.observe(settings, e.time, e.dest, e.failed).strike;
  v.contacts = detector.window_contacts();
  v.failures = detector.window_failures();
  v.estimate = detector.distinct_estimate();
  return v;
}

TEST(DetectorProperty, FailureRatioInvariantToReorderingWithinWindow) {
  DetectorSettings settings;
  settings.window = 5.0;
  settings.contact_rate_threshold = 0.0;
  settings.distinct_dest_threshold = 0.0;
  settings.failure_ratio_threshold = 0.5;
  settings.failure_min_attempts = 4;

  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Rng rng(0xd1b54a32d192ed03ULL + seed);
    // One window of mixed traffic: timestamps anywhere inside it,
    // failure marks drawn so some seeds cross the ratio and some
    // don't.
    std::vector<Event> events;
    const std::size_t count = 4 + static_cast<std::size_t>(rng.next_u64() % 24);
    for (std::size_t i = 0; i < count; ++i)
      events.push_back({settings.window * rng.uniform(),
                        rng.next_u64() % 40, rng.uniform() < 0.5});

    const Verdict baseline = feed(settings, events);
    // The whole-window verdict is a pure function of the final
    // counters; when it crosses the ratio, the in-stream check sees
    // that same state on the last event, so the latch must have fired
    // by then under EVERY ordering. (Strike *timing* is not
    // order-invariant: a prefix like F F S S crosses 0.5 transiently
    // even when the full window ends below it.)
    const bool final_suspicious =
        baseline.contacts >= settings.failure_min_attempts &&
        static_cast<double>(baseline.failures) >=
            settings.failure_ratio_threshold *
                static_cast<double>(baseline.contacts);
    for (int shuffle = 0; shuffle < 8; ++shuffle) {
      // Fisher–Yates with the test RNG, so every permutation is
      // reproducible from the seed.
      std::vector<Event> permuted = events;
      for (std::size_t i = permuted.size(); i > 1; --i)
        std::swap(permuted[i - 1], permuted[rng.next_u64() % i]);

      const Verdict verdict = feed(settings, permuted);
      EXPECT_EQ(verdict.contacts, baseline.contacts) << "seed=" << seed;
      EXPECT_EQ(verdict.failures, baseline.failures) << "seed=" << seed;
      EXPECT_DOUBLE_EQ(verdict.estimate, baseline.estimate)
          << "seed=" << seed;
      // The strike latch admits at most one strike per window no
      // matter the order.
      EXPECT_LE(verdict.strikes, 1u) << "seed=" << seed;
      if (final_suspicious) {
        EXPECT_EQ(verdict.strikes, 1u)
            << "seed=" << seed << " contacts=" << verdict.contacts
            << " failures=" << verdict.failures;
      }
    }
  }
}

TEST(DetectorProperty, ReorderingAcrossWindowsPreservesPerWindowStrikes) {
  DetectorSettings settings;
  settings.window = 5.0;
  settings.contact_rate_threshold = 6.0;
  settings.distinct_dest_threshold = 0.0;
  settings.failure_ratio_threshold = 0.0;

  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(0xa0761d6478bd642fULL + seed);
    // Three consecutive windows with independent loads; windows are
    // delivered in order, events inside each are permuted.
    std::vector<std::vector<Event>> windows(3);
    for (std::size_t w = 0; w < windows.size(); ++w) {
      const std::size_t count = 1 + static_cast<std::size_t>(rng.next_u64() % 12);
      for (std::size_t i = 0; i < count; ++i)
        windows[w].push_back(
            {settings.window * (static_cast<double>(w) + rng.uniform()),
             rng.next_u64() % 40, false});
    }

    auto strikes_of = [&](bool permute) {
      HostDetector detector;
      std::vector<std::uint64_t> strikes;
      std::uint64_t rotation = seed;
      for (const std::vector<Event>& window : windows) {
        std::vector<Event> batch = window;
        if (permute)
          std::rotate(batch.begin(),
                      batch.begin() + (++rotation % batch.size()),
                      batch.end());
        std::uint64_t count = 0;
        for (const Event& e : batch)
          count += detector.observe(settings, e.time, e.dest, e.failed).strike;
        strikes.push_back(count);
      }
      return strikes;
    };

    EXPECT_EQ(strikes_of(false), strikes_of(true)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace dq::quarantine
