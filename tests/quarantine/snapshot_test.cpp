#include "quarantine/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "quarantine/engine.hpp"
#include "stats/hash.hpp"

namespace dq::quarantine {
namespace {

QuarantineConfig make_config() {
  QuarantineConfig c;
  c.enabled = true;
  c.detector.window = 5.0;
  c.detector.contact_rate_threshold = 6.0;
  c.detector.distinct_dest_threshold = 5.0;
  c.detector.failure_ratio_threshold = 0.6;
  c.detector.failure_min_attempts = 4;
  c.policy.strikes_to_quarantine = 2;
  c.policy.base_period = 30.0;
  c.policy.escalation = 2.0;
  c.policy.max_period = 240.0;
  return c;
}

struct SynthFlow {
  double time;
  std::uint32_t host;
  std::uint64_t dest;
  bool failed;
};

/// Deterministic synthetic stream: flow i is a pure function of
/// (seed, i). A contiguous low block of "worm" hosts scans random
/// destinations with a high failure rate; the rest revisit a small
/// per-host pool. Mirrors serve::SyntheticFlowSource so the engine sees
/// realistic state churn (strikes, quarantines, escalations, releases).
SynthFlow flow_at(std::uint64_t i, std::uint32_t hosts = 96,
                  std::uint64_t seed = 42) {
  const std::uint64_t r0 = mix64(seed ^ (i * 0x9e3779b97f4a7c15ULL));
  const std::uint64_t r1 = mix64(r0 ^ 0xd1b54a32d192ed03ULL);
  const std::uint64_t r2 = mix64(r1 ^ 0x8cb92ba72f3d8dd7ULL);
  SynthFlow f;
  f.host = static_cast<std::uint32_t>(r0 % hosts);
  const bool worm = f.host < hosts / 8;
  f.time = static_cast<double>(i) * 0.05;
  f.dest = worm ? r1 : static_cast<std::uint64_t>(f.host) * 16 + r1 % 16;
  const double u = static_cast<double>(r2 >> 11) * 0x1.0p-53;
  f.failed = u < (worm ? 0.8 : 0.02);
  return f;
}

void feed(QuarantineEngine& e, std::uint64_t from, std::uint64_t to) {
  for (std::uint64_t i = from; i < to; ++i) {
    const SynthFlow f = flow_at(i);
    e.advance_to(f.time);
    e.observe(f.host, f.dest, f.time, f.failed);
  }
}

void expect_records_equal(const QuarantineEngine& a,
                          const QuarantineEngine& b) {
  ASSERT_EQ(a.num_hosts(), b.num_hosts());
  for (std::uint32_t h = 0; h < a.num_hosts(); ++h) {
    const HostRecord& ra = a.record(h);
    const HostRecord& rb = b.record(h);
    EXPECT_EQ(ra.state, rb.state) << "host " << h;
    EXPECT_EQ(ra.strikes, rb.strikes) << "host " << h;
    EXPECT_EQ(ra.offenses, rb.offenses) << "host " << h;
    EXPECT_EQ(ra.first_suspected, rb.first_suspected) << "host " << h;
    EXPECT_EQ(ra.first_quarantined, rb.first_quarantined) << "host " << h;
    EXPECT_EQ(ra.quarantine_start, rb.quarantine_start) << "host " << h;
    EXPECT_EQ(ra.release_time, rb.release_time) << "host " << h;
    EXPECT_EQ(ra.quarantine_time, rb.quarantine_time) << "host " << h;
    const DetectorState da = a.detector_state(h);
    const DetectorState db = b.detector_state(h);
    EXPECT_EQ(da.window_index, db.window_index) << "host " << h;
    EXPECT_EQ(da.contacts, db.contacts) << "host " << h;
    EXPECT_EQ(da.failures, db.failures) << "host " << h;
    EXPECT_EQ(da.dest_sketch, db.dest_sketch) << "host " << h;
    EXPECT_EQ(da.flagged, db.flagged) << "host " << h;
  }
}

TEST(QuarantineSnapshot, RestoredEngineReplaysIdenticallyFromAnyPrefix) {
  constexpr std::uint64_t kFlows = 30'000;
  QuarantineEngine uninterrupted(96, make_config());
  feed(uninterrupted, 0, kFlows);
  ASSERT_GT(uninterrupted.quarantine_events(), 0u);  // non-trivial stream

  for (const std::uint64_t cut : {1ULL, 500ULL, 7'321ULL, 29'999ULL}) {
    QuarantineEngine prefix(96, make_config());
    feed(prefix, 0, cut);
    const campaign::JsonValue snap = engine_to_json(prefix);

    QuarantineEngine resumed(96, make_config());
    restore_engine(resumed, snap);
    expect_records_equal(prefix, resumed);
    EXPECT_EQ(resumed.quarantine_events(), prefix.quarantine_events());
    EXPECT_EQ(resumed.currently_quarantined(),
              prefix.currently_quarantined());

    feed(resumed, cut, kFlows);
    expect_records_equal(uninterrupted, resumed);
    EXPECT_EQ(resumed.quarantine_events(),
              uninterrupted.quarantine_events());

    // Reports are bit-identical too: same records, same accumulation
    // order (host id order), same event totals.
    std::vector<double> labels(96, -1.0);
    for (std::uint32_t h = 0; h < 96 / 8; ++h) labels[h] = 0.0;
    const double now = flow_at(kFlows - 1).time;
    const QuarantineReport ru = uninterrupted.report(labels, now);
    const QuarantineReport rr = resumed.report(labels, now);
    EXPECT_EQ(ru.detected_targets, rr.detected_targets);
    EXPECT_EQ(ru.mean_detection_latency, rr.mean_detection_latency);
    EXPECT_EQ(ru.false_positive_hosts, rr.false_positive_hosts);
    EXPECT_EQ(ru.benign_quarantine_time, rr.benign_quarantine_time);
    EXPECT_EQ(ru.target_quarantine_time, rr.target_quarantine_time);
    EXPECT_EQ(ru.quarantine_events, rr.quarantine_events);
  }
}

TEST(QuarantineSnapshot, SnapshotOfRestoredEngineIsByteIdentical) {
  QuarantineEngine e(96, make_config());
  feed(e, 0, 12'000);
  const std::string bytes = engine_to_json(e).dump();

  QuarantineEngine restored(96, make_config());
  restore_engine(restored, engine_to_json(e));
  EXPECT_EQ(engine_to_json(restored).dump(), bytes);
}

TEST(QuarantineSnapshot, HostArraysRoundTripPreservesFullSketchPrecision) {
  std::vector<HostRecord> records(3);
  std::vector<DetectorState> detectors(3);
  records[1].state = HostQState::kQuarantined;
  records[1].strikes = 2;
  records[1].offenses = 3;
  records[1].first_suspected = 1.25;
  records[1].first_quarantined = 2.5;
  records[1].quarantine_start = 100.125;
  records[1].release_time = 340.125;
  records[2].state = HostQState::kSuspected;
  records[2].quarantine_time = 0.1;  // not exactly representable
  detectors[0].window_index = -1;    // never observed
  detectors[1].window_index = 7;
  detectors[1].contacts = 19;
  detectors[1].failures = 11;
  detectors[1].dest_sketch = 0xffffffffffffffffULL;  // needs 64 bits
  detectors[1].flagged = true;

  const campaign::JsonValue json = host_arrays_to_json(records, detectors);
  const HostArrays back = host_arrays_from_json(json);
  ASSERT_EQ(back.records.size(), 3u);
  EXPECT_EQ(back.records[1].state, HostQState::kQuarantined);
  EXPECT_EQ(back.records[1].release_time, 340.125);
  EXPECT_EQ(back.records[2].quarantine_time, 0.1);
  EXPECT_EQ(back.detectors[0].window_index, -1);
  EXPECT_EQ(back.detectors[1].dest_sketch, 0xffffffffffffffffULL);
  EXPECT_TRUE(back.detectors[1].flagged);
  // And the encoding itself round-trips byte-for-byte.
  EXPECT_EQ(
      host_arrays_to_json(back.records, back.detectors).dump(),
      json.dump());
}

TEST(QuarantineSnapshot, RejectsMalformedInput) {
  QuarantineEngine fresh(4, make_config());

  EXPECT_THROW(restore_engine(fresh, campaign::JsonValue::number(1.0)),
               std::invalid_argument);
  EXPECT_THROW(restore_engine(fresh, campaign::JsonValue::object()),
               std::invalid_argument);

  QuarantineEngine donor(4, make_config());
  // Wrong host count.
  {
    QuarantineEngine bigger(8, make_config());
    EXPECT_THROW(restore_engine(bigger, engine_to_json(donor)),
                 std::invalid_argument);
  }
  // Wrong config: thresholds differ, resuming would silently diverge.
  {
    QuarantineConfig other = make_config();
    other.policy.base_period = 60.0;
    QuarantineEngine mismatched(4, other);
    EXPECT_THROW(restore_engine(mismatched, engine_to_json(donor)),
                 std::invalid_argument);
  }
  // Column arrays of unequal length.
  EXPECT_THROW(
      host_arrays_to_json(std::vector<HostRecord>(2),
                          std::vector<DetectorState>(3)),
      std::invalid_argument);
  // Out-of-range state enum.
  {
    std::vector<HostRecord> recs(1);
    std::vector<DetectorState> dets(1);
    campaign::JsonValue json = host_arrays_to_json(recs, dets);
    campaign::JsonValue bad_states = campaign::JsonValue::array();
    bad_states.push_back(campaign::JsonValue::integer(9));
    json.set("state", std::move(bad_states));
    EXPECT_THROW(host_arrays_from_json(json), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------
// Shared-bitmap backend: the v2 snapshot carries the block pools in a
// "store" section, restored before per-host state (host window
// distances are encoded relative to their block's window).

QuarantineConfig make_compact_config() {
  QuarantineConfig c = make_config();
  // Hotter failure gate than make_config: the synthetic stream spreads
  // flows so thin (~1 per host-window) that the exact config barely
  // quarantines, and the pool-confirmation gate needs several strike
  // windows to guarantee churn worth snapshotting.
  c.detector.failure_min_attempts = 3;
  c.detector.failure_ratio_threshold = 0.5;
  c.estimator_backend = EstimatorBackend::kSharedBitmap;
  c.compact.block_hosts = 16;  // 96 hosts -> 6 blocks
  c.compact.pool_bits_per_host = 16;
  c.compact.virtual_bits = 64;
  return c;
}

/// Copy of `obj` minus one key (JsonValue has no erase).
campaign::JsonValue without_key(const campaign::JsonValue& obj,
                                std::string_view key) {
  campaign::JsonValue out = campaign::JsonValue::object();
  for (const auto& [k, v] : obj.members())
    if (k != key) out.set(k, v);
  return out;
}

TEST(QuarantineSnapshot, CompactEngineReplaysIdenticallyFromAnyPrefix) {
  constexpr std::uint64_t kFlows = 30'000;
  QuarantineEngine uninterrupted(96, make_compact_config());
  feed(uninterrupted, 0, kFlows);
  ASSERT_GT(uninterrupted.quarantine_events(), 0u);

  for (const std::uint64_t cut : {1ULL, 500ULL, 7'321ULL, 29'999ULL}) {
    QuarantineEngine prefix(96, make_compact_config());
    feed(prefix, 0, cut);
    const campaign::JsonValue snap = engine_to_json(prefix);

    QuarantineEngine resumed(96, make_compact_config());
    restore_engine(resumed, snap);
    expect_records_equal(prefix, resumed);
    EXPECT_EQ(resumed.quarantine_events(), prefix.quarantine_events());

    // The restored pools must be bit-identical, not just the visible
    // per-host states: any lost pool bit would skew later estimates.
    const CompactEstimatorStore* sp = prefix.compact_store();
    const CompactEstimatorStore* sr = resumed.compact_store();
    ASSERT_NE(sp, nullptr);
    ASSERT_NE(sr, nullptr);
    for (std::size_t b = 0; b < sp->num_blocks(); ++b) {
      EXPECT_EQ(sp->block_window(b), sr->block_window(b)) << "block " << b;
      const std::uint64_t* wp = sp->block_words(b);
      const std::uint64_t* wr = sr->block_words(b);
      for (std::size_t w = 0; w < sp->words_per_block(); ++w)
        EXPECT_EQ(wp[w], wr[w]) << "block " << b << " word " << w;
    }

    feed(resumed, cut, kFlows);
    expect_records_equal(uninterrupted, resumed);
    EXPECT_EQ(resumed.quarantine_events(),
              uninterrupted.quarantine_events());
  }
}

TEST(QuarantineSnapshot, CompactSnapshotOfRestoredEngineIsByteIdentical) {
  QuarantineEngine e(96, make_compact_config());
  feed(e, 0, 12'000);
  const std::string bytes = engine_to_json(e).dump();
  EXPECT_NE(bytes.find("\"store\""), std::string::npos);
  EXPECT_NE(bytes.find("\"version\":2"), std::string::npos);

  QuarantineEngine restored(96, make_compact_config());
  restore_engine(restored, engine_to_json(e));
  EXPECT_EQ(engine_to_json(restored).dump(), bytes);
}

TEST(QuarantineSnapshot, SnapshotVersionIsRequiredAndChecked) {
  QuarantineEngine donor(96, make_config());
  feed(donor, 0, 100);
  const campaign::JsonValue snap = engine_to_json(donor);

  {
    QuarantineEngine fresh(96, make_config());
    try {
      restore_engine(fresh, without_key(snap, "version"));
      FAIL() << "missing version accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("pre-v2"), std::string::npos);
    }
  }
  for (const double bad : {1.0, 3.0, 99.0}) {
    campaign::JsonValue wrong = snap;
    wrong.set("version", campaign::JsonValue::number(bad));
    QuarantineEngine fresh(96, make_config());
    EXPECT_THROW(restore_engine(fresh, wrong), std::invalid_argument);
  }
}

TEST(QuarantineSnapshot, BackendMismatchBetweenSnapshotAndEngineRejected) {
  QuarantineEngine exact(96, make_config());
  QuarantineEngine compact(96, make_compact_config());
  feed(exact, 0, 100);
  feed(compact, 0, 100);

  // Config dumps differ (estimator section), so restore must refuse in
  // both directions rather than silently dropping or inventing pools.
  {
    QuarantineEngine fresh(96, make_compact_config());
    EXPECT_THROW(restore_engine(fresh, engine_to_json(exact)),
                 std::invalid_argument);
  }
  {
    QuarantineEngine fresh(96, make_config());
    EXPECT_THROW(restore_engine(fresh, engine_to_json(compact)),
                 std::invalid_argument);
  }
}

TEST(QuarantineSnapshot, CompactRestoreRejectsCorruptStore) {
  // 6 bits/host over 16-host blocks: 96-bit pools, so each pool's
  // second word has 32 permanently-zero tail bits to corrupt.
  QuarantineConfig cfg = make_compact_config();
  cfg.compact.pool_bits_per_host = 6;
  QuarantineEngine donor(96, cfg);
  feed(donor, 0, 5'000);
  const campaign::JsonValue snap = engine_to_json(donor);
  const campaign::JsonValue& store = snap.at("store");

  // Missing store section entirely.
  {
    QuarantineEngine fresh(96, cfg);
    EXPECT_THROW(restore_engine(fresh, without_key(snap, "store")),
                 std::invalid_argument);
  }
  // Truncated pool array (one word short).
  {
    campaign::JsonValue pool = campaign::JsonValue::array();
    const auto& words = store.at("pool").items();
    for (std::size_t i = 0; i + 1 < words.size(); ++i)
      pool.push_back(words[i]);
    campaign::JsonValue bad_store = without_key(store, "pool");
    bad_store.set("pool", std::move(pool));
    campaign::JsonValue bad = snap;
    bad.set("store", std::move(bad_store));
    QuarantineEngine fresh(96, cfg);
    EXPECT_THROW(restore_engine(fresh, bad), std::invalid_argument);
  }
  // Stray bits past the pool tail: 96-bit pools leave the top 32 bits
  // of each pool's last word permanently zero.
  {
    campaign::JsonValue pool = campaign::JsonValue::array();
    const auto& words = store.at("pool").items();
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (i == 1) {  // block 0, attempts pool, tail word
        pool.push_back(campaign::JsonValue::integer(
            words[i].as_uint() | (1ULL << 63)));
      } else {
        pool.push_back(words[i]);
      }
    }
    campaign::JsonValue bad_store = without_key(store, "pool");
    bad_store.set("pool", std::move(pool));
    campaign::JsonValue bad = snap;
    bad.set("store", std::move(bad_store));
    QuarantineEngine fresh(96, cfg);
    try {
      restore_engine(fresh, bad);
      FAIL() << "stray tail bits accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("block 0"), std::string::npos);
    }
  }
  // Nonzero pool bits in an untouched (window -1) block: snapshot a
  // fresh engine (every block untouched) and flip one pool bit on.
  {
    QuarantineEngine untouched(96, cfg);
    campaign::JsonValue bad = engine_to_json(untouched);
    const campaign::JsonValue& zero_store = bad.at("store");
    ASSERT_LT(zero_store.at("window").items()[0].as_number(), 0.0);
    campaign::JsonValue pool = campaign::JsonValue::array();
    pool.push_back(campaign::JsonValue::integer(1));  // block 0, word 0
    for (std::size_t i = 1; i < zero_store.at("pool").size(); ++i)
      pool.push_back(campaign::JsonValue::integer(0));
    campaign::JsonValue bad_store = without_key(zero_store, "pool");
    bad_store.set("pool", std::move(pool));
    bad.set("store", std::move(bad_store));
    QuarantineEngine fresh(96, cfg);
    EXPECT_THROW(restore_engine(fresh, bad), std::invalid_argument);
  }
}

TEST(QuarantineSnapshot, CompactRestoreHostValidatesInterchangeState) {
  QuarantineConfig cfg = make_compact_config();
  QuarantineEngine e(96, cfg);
  e.observe(0, 7, 1.0, false);

  // The compact backend cannot reconstruct a private 64-bit sketch, so
  // host interchange states always carry dest_sketch = 0; a nonzero
  // sketch means the snapshot came from an exact engine.
  DetectorState bad_sketch = e.detector_state(1);
  bad_sketch.dest_sketch = 0x1;
  EXPECT_THROW(e.restore_host(1, HostRecord{}, bad_sketch),
               std::invalid_argument);

  // A host cannot be ahead of its block's window.
  DetectorState future = e.detector_state(1);
  future.window_index = 1'000;
  future.contacts = 1;
  EXPECT_THROW(e.restore_host(1, HostRecord{}, future),
               std::invalid_argument);
}

TEST(QuarantineSnapshot, RestoreHostRefusesAlreadyQuarantinedTarget) {
  QuarantineEngine e(4, make_config());
  // Two over-threshold windows: strike, strike, quarantine.
  for (int i = 0; i < 8; ++i)
    e.observe(0, static_cast<std::uint64_t>(i), 1.0, false);
  for (int i = 0; i < 8; ++i)
    e.observe(0, static_cast<std::uint64_t>(i), 6.0, false);
  ASSERT_TRUE(e.quarantined(0));
  EXPECT_THROW(e.restore_host(0, HostRecord{}, DetectorState{}),
               std::logic_error);
}

}  // namespace
}  // namespace dq::quarantine
