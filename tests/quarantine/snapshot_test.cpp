#include "quarantine/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "quarantine/engine.hpp"
#include "stats/hash.hpp"

namespace dq::quarantine {
namespace {

QuarantineConfig make_config() {
  QuarantineConfig c;
  c.enabled = true;
  c.detector.window = 5.0;
  c.detector.contact_rate_threshold = 6.0;
  c.detector.distinct_dest_threshold = 5.0;
  c.detector.failure_ratio_threshold = 0.6;
  c.detector.failure_min_attempts = 4;
  c.policy.strikes_to_quarantine = 2;
  c.policy.base_period = 30.0;
  c.policy.escalation = 2.0;
  c.policy.max_period = 240.0;
  return c;
}

struct SynthFlow {
  double time;
  std::uint32_t host;
  std::uint64_t dest;
  bool failed;
};

/// Deterministic synthetic stream: flow i is a pure function of
/// (seed, i). A contiguous low block of "worm" hosts scans random
/// destinations with a high failure rate; the rest revisit a small
/// per-host pool. Mirrors serve::SyntheticFlowSource so the engine sees
/// realistic state churn (strikes, quarantines, escalations, releases).
SynthFlow flow_at(std::uint64_t i, std::uint32_t hosts = 96,
                  std::uint64_t seed = 42) {
  const std::uint64_t r0 = mix64(seed ^ (i * 0x9e3779b97f4a7c15ULL));
  const std::uint64_t r1 = mix64(r0 ^ 0xd1b54a32d192ed03ULL);
  const std::uint64_t r2 = mix64(r1 ^ 0x8cb92ba72f3d8dd7ULL);
  SynthFlow f;
  f.host = static_cast<std::uint32_t>(r0 % hosts);
  const bool worm = f.host < hosts / 8;
  f.time = static_cast<double>(i) * 0.05;
  f.dest = worm ? r1 : static_cast<std::uint64_t>(f.host) * 16 + r1 % 16;
  const double u = static_cast<double>(r2 >> 11) * 0x1.0p-53;
  f.failed = u < (worm ? 0.8 : 0.02);
  return f;
}

void feed(QuarantineEngine& e, std::uint64_t from, std::uint64_t to) {
  for (std::uint64_t i = from; i < to; ++i) {
    const SynthFlow f = flow_at(i);
    e.advance_to(f.time);
    e.observe(f.host, f.dest, f.time, f.failed);
  }
}

void expect_records_equal(const QuarantineEngine& a,
                          const QuarantineEngine& b) {
  ASSERT_EQ(a.num_hosts(), b.num_hosts());
  for (std::uint32_t h = 0; h < a.num_hosts(); ++h) {
    const HostRecord& ra = a.record(h);
    const HostRecord& rb = b.record(h);
    EXPECT_EQ(ra.state, rb.state) << "host " << h;
    EXPECT_EQ(ra.strikes, rb.strikes) << "host " << h;
    EXPECT_EQ(ra.offenses, rb.offenses) << "host " << h;
    EXPECT_EQ(ra.first_suspected, rb.first_suspected) << "host " << h;
    EXPECT_EQ(ra.first_quarantined, rb.first_quarantined) << "host " << h;
    EXPECT_EQ(ra.quarantine_start, rb.quarantine_start) << "host " << h;
    EXPECT_EQ(ra.release_time, rb.release_time) << "host " << h;
    EXPECT_EQ(ra.quarantine_time, rb.quarantine_time) << "host " << h;
    const DetectorState da = a.detector_state(h);
    const DetectorState db = b.detector_state(h);
    EXPECT_EQ(da.window_index, db.window_index) << "host " << h;
    EXPECT_EQ(da.contacts, db.contacts) << "host " << h;
    EXPECT_EQ(da.failures, db.failures) << "host " << h;
    EXPECT_EQ(da.dest_sketch, db.dest_sketch) << "host " << h;
    EXPECT_EQ(da.flagged, db.flagged) << "host " << h;
  }
}

TEST(QuarantineSnapshot, RestoredEngineReplaysIdenticallyFromAnyPrefix) {
  constexpr std::uint64_t kFlows = 30'000;
  QuarantineEngine uninterrupted(96, make_config());
  feed(uninterrupted, 0, kFlows);
  ASSERT_GT(uninterrupted.quarantine_events(), 0u);  // non-trivial stream

  for (const std::uint64_t cut : {1ULL, 500ULL, 7'321ULL, 29'999ULL}) {
    QuarantineEngine prefix(96, make_config());
    feed(prefix, 0, cut);
    const campaign::JsonValue snap = engine_to_json(prefix);

    QuarantineEngine resumed(96, make_config());
    restore_engine(resumed, snap);
    expect_records_equal(prefix, resumed);
    EXPECT_EQ(resumed.quarantine_events(), prefix.quarantine_events());
    EXPECT_EQ(resumed.currently_quarantined(),
              prefix.currently_quarantined());

    feed(resumed, cut, kFlows);
    expect_records_equal(uninterrupted, resumed);
    EXPECT_EQ(resumed.quarantine_events(),
              uninterrupted.quarantine_events());

    // Reports are bit-identical too: same records, same accumulation
    // order (host id order), same event totals.
    std::vector<double> labels(96, -1.0);
    for (std::uint32_t h = 0; h < 96 / 8; ++h) labels[h] = 0.0;
    const double now = flow_at(kFlows - 1).time;
    const QuarantineReport ru = uninterrupted.report(labels, now);
    const QuarantineReport rr = resumed.report(labels, now);
    EXPECT_EQ(ru.detected_targets, rr.detected_targets);
    EXPECT_EQ(ru.mean_detection_latency, rr.mean_detection_latency);
    EXPECT_EQ(ru.false_positive_hosts, rr.false_positive_hosts);
    EXPECT_EQ(ru.benign_quarantine_time, rr.benign_quarantine_time);
    EXPECT_EQ(ru.target_quarantine_time, rr.target_quarantine_time);
    EXPECT_EQ(ru.quarantine_events, rr.quarantine_events);
  }
}

TEST(QuarantineSnapshot, SnapshotOfRestoredEngineIsByteIdentical) {
  QuarantineEngine e(96, make_config());
  feed(e, 0, 12'000);
  const std::string bytes = engine_to_json(e).dump();

  QuarantineEngine restored(96, make_config());
  restore_engine(restored, engine_to_json(e));
  EXPECT_EQ(engine_to_json(restored).dump(), bytes);
}

TEST(QuarantineSnapshot, HostArraysRoundTripPreservesFullSketchPrecision) {
  std::vector<HostRecord> records(3);
  std::vector<DetectorState> detectors(3);
  records[1].state = HostQState::kQuarantined;
  records[1].strikes = 2;
  records[1].offenses = 3;
  records[1].first_suspected = 1.25;
  records[1].first_quarantined = 2.5;
  records[1].quarantine_start = 100.125;
  records[1].release_time = 340.125;
  records[2].state = HostQState::kSuspected;
  records[2].quarantine_time = 0.1;  // not exactly representable
  detectors[0].window_index = -1;    // never observed
  detectors[1].window_index = 7;
  detectors[1].contacts = 19;
  detectors[1].failures = 11;
  detectors[1].dest_sketch = 0xffffffffffffffffULL;  // needs 64 bits
  detectors[1].flagged = true;

  const campaign::JsonValue json = host_arrays_to_json(records, detectors);
  const HostArrays back = host_arrays_from_json(json);
  ASSERT_EQ(back.records.size(), 3u);
  EXPECT_EQ(back.records[1].state, HostQState::kQuarantined);
  EXPECT_EQ(back.records[1].release_time, 340.125);
  EXPECT_EQ(back.records[2].quarantine_time, 0.1);
  EXPECT_EQ(back.detectors[0].window_index, -1);
  EXPECT_EQ(back.detectors[1].dest_sketch, 0xffffffffffffffffULL);
  EXPECT_TRUE(back.detectors[1].flagged);
  // And the encoding itself round-trips byte-for-byte.
  EXPECT_EQ(
      host_arrays_to_json(back.records, back.detectors).dump(),
      json.dump());
}

TEST(QuarantineSnapshot, RejectsMalformedInput) {
  QuarantineEngine fresh(4, make_config());

  EXPECT_THROW(restore_engine(fresh, campaign::JsonValue::number(1.0)),
               std::invalid_argument);
  EXPECT_THROW(restore_engine(fresh, campaign::JsonValue::object()),
               std::invalid_argument);

  QuarantineEngine donor(4, make_config());
  // Wrong host count.
  {
    QuarantineEngine bigger(8, make_config());
    EXPECT_THROW(restore_engine(bigger, engine_to_json(donor)),
                 std::invalid_argument);
  }
  // Wrong config: thresholds differ, resuming would silently diverge.
  {
    QuarantineConfig other = make_config();
    other.policy.base_period = 60.0;
    QuarantineEngine mismatched(4, other);
    EXPECT_THROW(restore_engine(mismatched, engine_to_json(donor)),
                 std::invalid_argument);
  }
  // Column arrays of unequal length.
  EXPECT_THROW(
      host_arrays_to_json(std::vector<HostRecord>(2),
                          std::vector<DetectorState>(3)),
      std::invalid_argument);
  // Out-of-range state enum.
  {
    std::vector<HostRecord> recs(1);
    std::vector<DetectorState> dets(1);
    campaign::JsonValue json = host_arrays_to_json(recs, dets);
    campaign::JsonValue bad_states = campaign::JsonValue::array();
    bad_states.push_back(campaign::JsonValue::integer(9));
    json.set("state", std::move(bad_states));
    EXPECT_THROW(host_arrays_from_json(json), std::invalid_argument);
  }
}

TEST(QuarantineSnapshot, RestoreHostRefusesAlreadyQuarantinedTarget) {
  QuarantineEngine e(4, make_config());
  // Two over-threshold windows: strike, strike, quarantine.
  for (int i = 0; i < 8; ++i)
    e.observe(0, static_cast<std::uint64_t>(i), 1.0, false);
  for (int i = 0; i < 8; ++i)
    e.observe(0, static_cast<std::uint64_t>(i), 6.0, false);
  ASSERT_TRUE(e.quarantined(0));
  EXPECT_THROW(e.restore_host(0, HostRecord{}, DetectorState{}),
               std::logic_error);
}

}  // namespace
}  // namespace dq::quarantine
