#include "ratelimit/dns_throttle.hpp"

#include <gtest/gtest.h>

namespace dq::ratelimit {
namespace {

DnsThrottleConfig config() {
  DnsThrottleConfig c;
  c.window = 60.0;
  c.limit = 6;  // the paper's default: six per minute
  return c;
}

TEST(DnsCache, RecordAndExpiry) {
  DnsCache cache;
  cache.record(42, 100.0);
  EXPECT_TRUE(cache.valid(42, 50.0));
  EXPECT_FALSE(cache.valid(42, 100.0));
  EXPECT_FALSE(cache.valid(7, 50.0));
}

TEST(DnsCache, LongerExpiryWins) {
  DnsCache cache;
  cache.record(42, 100.0);
  cache.record(42, 200.0);
  EXPECT_TRUE(cache.valid(42, 150.0));
  cache.record(42, 50.0);  // shorter TTL must not shorten validity
  EXPECT_TRUE(cache.valid(42, 150.0));
}

TEST(DnsCache, ExpireHousekeeping) {
  DnsCache cache;
  cache.record(1, 10.0);
  cache.record(2, 100.0);
  cache.expire(50.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.valid(2, 60.0));
}

TEST(DnsThrottle, Validation) {
  DnsThrottleConfig c = config();
  c.window = 0.0;
  EXPECT_THROW(DnsThrottle{c}, std::invalid_argument);
  c = config();
  c.limit = 0;
  EXPECT_THROW(DnsThrottle{c}, std::invalid_argument);
}

TEST(DnsThrottle, DnsTranslatedDestinationsAreFree) {
  DnsThrottle throttle(config());
  throttle.record_dns(0.0, 42, 300.0);
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(throttle.allow(1.0 + i * 0.01, 42));
}

TEST(DnsThrottle, DnsEntryExpires) {
  DnsThrottle throttle(config());
  throttle.record_dns(0.0, 42, 10.0);
  EXPECT_FALSE(throttle.is_unknown(5.0, 42));
  EXPECT_TRUE(throttle.is_unknown(11.0, 42));
}

TEST(DnsThrottle, InboundPeersAreFree) {
  DnsThrottle throttle(config());
  throttle.record_inbound(77);
  EXPECT_FALSE(throttle.is_unknown(0.0, 77));
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(throttle.allow(i * 1.0, 77));
}

TEST(DnsThrottle, UnknownBudgetSixPerMinute) {
  DnsThrottle throttle(config());
  int allowed = 0;
  for (IpAddress ip = 1; ip <= 20; ++ip)
    if (throttle.allow(1.0, ip)) ++allowed;
  EXPECT_EQ(allowed, 6);
}

TEST(DnsThrottle, BudgetRecoversAfterWindow) {
  DnsThrottle throttle(config());
  for (IpAddress ip = 1; ip <= 6; ++ip) EXPECT_TRUE(throttle.allow(0.0, ip));
  EXPECT_FALSE(throttle.allow(30.0, 100));
  EXPECT_TRUE(throttle.allow(61.0, 100));
}

TEST(DnsThrottle, WormBlockedLegitFlows) {
  // A worm scanning random IPs (no DNS) is capped at 6/minute while a
  // client that resolves names first is untouched — the mechanism's
  // selling point in the paper.
  DnsThrottle throttle(config());
  int worm_allowed = 0;
  for (IpAddress ip = 10000; ip < 10600; ++ip)
    if (throttle.allow(ip * 0.1 - 1000.0, ip)) ++worm_allowed;
  EXPECT_LE(worm_allowed, 7);

  DnsThrottle client(config());
  int legit_allowed = 0;
  for (IpAddress ip = 1; ip <= 100; ++ip) {
    const double t = ip * 0.5;
    client.record_dns(t - 0.01, ip, 300.0);
    if (client.allow(t, ip)) ++legit_allowed;
  }
  EXPECT_EQ(legit_allowed, 100);
}

TEST(DnsThrottle, RejectsNonPositiveTtl) {
  DnsThrottle throttle(config());
  EXPECT_THROW(throttle.record_dns(0.0, 42, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dq::ratelimit
