// Randomized invariant sweeps over the rate-limiting mechanisms: drive
// each limiter with adversarial random traffic (bursts, repeats, time
// gaps) and assert its contract holds throughout. Parameterized over
// RNG seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "ratelimit/dns_throttle.hpp"
#include "ratelimit/sliding_window.hpp"
#include "ratelimit/token_bucket.hpp"
#include "ratelimit/williamson.hpp"
#include "stats/rng.hpp"

namespace dq::ratelimit {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

/// Generates a bursty contact stream: mostly a small working set,
/// occasional bursts of fresh addresses, random gaps.
struct TrafficGen {
  Rng rng;
  double t = 0.0;
  IpAddress fresh = 1 << 20;

  explicit TrafficGen(std::uint64_t seed) : rng(seed) {}

  std::pair<Seconds, IpAddress> next() {
    t += rng.exponential(rng.bernoulli(0.1) ? 0.2 : 5.0);
    if (rng.bernoulli(0.6))
      return {t, static_cast<IpAddress>(rng.uniform_int(8))};  // repeats
    return {t, fresh++};
  }
};

TEST_P(FuzzSweep, SlidingWindowNeverExceedsLimit) {
  SlidingWindowLimiter limiter(5.0, 10);
  TrafficGen gen(GetParam());
  for (int i = 0; i < 20000; ++i) {
    const auto [now, dest] = gen.next();
    limiter.allow(now, dest);
    ASSERT_LE(limiter.distinct_in_window(now), 10u);
  }
}

TEST_P(FuzzSweep, TokenBucketEnvelope) {
  TokenBucket bucket(2.0, 4.0);
  TrafficGen gen(GetParam());
  double first = -1.0, last = 0.0;
  std::uint64_t admitted = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto [now, dest] = gen.next();
    (void)dest;
    if (first < 0.0) first = now;
    last = now;
    admitted += bucket.try_consume(now);
  }
  // Long-run envelope: rate * elapsed + burst.
  EXPECT_LE(static_cast<double>(admitted), 2.0 * (last - first) + 4.0 + 1.0);
}

TEST_P(FuzzSweep, WilliamsonConservation) {
  WilliamsonConfig config;
  config.working_set_size = 4;
  config.clock_period = 1.0;
  config.queue_cap = 50;
  WilliamsonThrottle throttle(config);
  TrafficGen gen(GetParam());
  std::uint64_t allowed = 0, delayed = 0, dropped = 0;
  double now = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const auto [t, dest] = gen.next();
    now = t;
    const Outcome outcome = throttle.submit(now, dest);
    switch (outcome.action) {
      case Action::kAllow:
        ++allowed;
        EXPECT_DOUBLE_EQ(outcome.release_time, now);
        break;
      case Action::kDelay:
        ++delayed;
        EXPECT_GT(outcome.release_time, now);
        break;
      case Action::kDrop:
        ++dropped;
        break;
    }
    // The queue never exceeds its cap.
    ASSERT_LE(throttle.queue_length(now), 50u);
  }
  EXPECT_EQ(allowed + delayed + dropped, 20000u);
  EXPECT_EQ(throttle.dropped(), dropped);
}

TEST_P(FuzzSweep, WilliamsonReleaseTimesAreSpaced) {
  WilliamsonConfig config;
  config.working_set_size = 2;
  config.clock_period = 1.0;
  config.queue_cap = 0;
  WilliamsonThrottle throttle(config);
  Rng rng(GetParam());
  // Burst of fresh destinations at a single instant: release times must
  // serialize at >= one per period.
  std::vector<double> releases;
  for (IpAddress ip = 100; ip < 140; ++ip) {
    const Outcome outcome = throttle.submit(7.0, ip);
    if (outcome.action == Action::kDelay)
      releases.push_back(outcome.release_time);
  }
  ASSERT_GE(releases.size(), 30u);
  std::sort(releases.begin(), releases.end());
  for (std::size_t i = 1; i < releases.size(); ++i)
    EXPECT_GE(releases[i] - releases[i - 1], 1.0 - 1e-9);
}

TEST_P(FuzzSweep, DnsThrottleNeverBlocksKnownDestinations) {
  DnsThrottle throttle(DnsThrottleConfig{});
  Rng rng(GetParam());
  std::map<IpAddress, double> dns_valid_until;
  double now = 0.0;
  for (int i = 0; i < 5000; ++i) {
    now += rng.exponential(1.0);
    const IpAddress ip = static_cast<IpAddress>(rng.uniform_int(64));
    const int action = static_cast<int>(rng.uniform_int(3));
    if (action == 0) {
      const double ttl = rng.uniform(1.0, 300.0);
      throttle.record_dns(now, ip, ttl);
      dns_valid_until[ip] = std::max(dns_valid_until[ip], now + ttl);
    } else if (action == 1) {
      throttle.record_inbound(ip);
      dns_valid_until[ip] =
          std::max(dns_valid_until[ip], 1e18);  // peers stay known
    } else {
      const bool known = dns_valid_until.contains(ip) &&
                         dns_valid_until[ip] > now;
      const bool allowed = throttle.allow(now, ip);
      if (known) {
        EXPECT_TRUE(allowed);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                           77u, 88u));

}  // namespace
}  // namespace dq::ratelimit
