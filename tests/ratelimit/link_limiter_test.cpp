#include "ratelimit/link_limiter.hpp"

#include <gtest/gtest.h>

namespace dq::ratelimit {
namespace {

TEST(LinkRateLimiter, UnlimitedPassesEverything) {
  LinkRateLimiter link(0);
  EXPECT_FALSE(link.limited());
  for (std::uint64_t p = 0; p < 100; ++p) EXPECT_TRUE(link.offer(p));
  EXPECT_EQ(link.queue_length(), 0u);
  EXPECT_EQ(link.total_passed(), 100u);
}

TEST(LinkRateLimiter, EnforcesPerTickBudget) {
  LinkRateLimiter link(2);
  EXPECT_TRUE(link.offer(1));
  EXPECT_TRUE(link.offer(2));
  EXPECT_FALSE(link.offer(3));
  EXPECT_EQ(link.queue_length(), 1u);
  EXPECT_EQ(link.total_queued(), 1u);
}

TEST(LinkRateLimiter, AdvanceTickReleasesFifo) {
  LinkRateLimiter link(2);
  link.offer(1);
  link.offer(2);
  link.offer(3);
  link.offer(4);
  link.offer(5);
  const auto released = link.advance_tick();
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0], 3u);
  EXPECT_EQ(released[1], 4u);
  EXPECT_EQ(link.queue_length(), 1u);
}

TEST(LinkRateLimiter, ReleasedPacketsConsumeNewBudget) {
  LinkRateLimiter link(1);
  link.offer(1);
  link.offer(2);
  const auto released = link.advance_tick();
  ASSERT_EQ(released.size(), 1u);
  // Budget for this tick is spent by the release.
  EXPECT_FALSE(link.offer(3));
}

TEST(LinkRateLimiter, ClearQueue) {
  LinkRateLimiter link(1);
  link.offer(1);
  link.offer(2);
  link.offer(3);
  EXPECT_EQ(link.clear_queue(), 2u);
  EXPECT_EQ(link.queue_length(), 0u);
}

TEST(LinkRateLimiter, ThroughputConservation) {
  LinkRateLimiter link(3);
  std::uint64_t released_total = 0, accepted_inline = 0;
  std::uint64_t id = 0;
  for (int tick = 0; tick < 100; ++tick) {
    released_total += link.advance_tick().size();
    for (int k = 0; k < 5; ++k)
      if (link.offer(id++)) ++accepted_inline;
  }
  // Per tick at most 3 packets move in total.
  EXPECT_LE(accepted_inline + released_total, 300u);
  EXPECT_EQ(accepted_inline + released_total + link.queue_length(), 500u);
}

}  // namespace
}  // namespace dq::ratelimit
