#include "ratelimit/sliding_window.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace dq::ratelimit {
namespace {

TEST(SlidingWindow, Validation) {
  EXPECT_THROW(SlidingWindowLimiter(0.0, 5), std::invalid_argument);
  EXPECT_THROW(SlidingWindowLimiter(5.0, 0), std::invalid_argument);
}

TEST(SlidingWindow, AllowsUpToLimitDistinct) {
  SlidingWindowLimiter limiter(5.0, 3);
  EXPECT_TRUE(limiter.allow(0.0, 1));
  EXPECT_TRUE(limiter.allow(0.1, 2));
  EXPECT_TRUE(limiter.allow(0.2, 3));
  EXPECT_FALSE(limiter.allow(0.3, 4));
  EXPECT_EQ(limiter.distinct_in_window(0.3), 3u);
}

TEST(SlidingWindow, RepeatContactsAreFree) {
  SlidingWindowLimiter limiter(5.0, 2);
  EXPECT_TRUE(limiter.allow(0.0, 7));
  EXPECT_TRUE(limiter.allow(0.5, 7));
  EXPECT_TRUE(limiter.allow(1.0, 7));
  EXPECT_EQ(limiter.distinct_in_window(1.0), 1u);
}

TEST(SlidingWindow, ExpiryFreesBudget) {
  SlidingWindowLimiter limiter(5.0, 1);
  EXPECT_TRUE(limiter.allow(0.0, 1));
  EXPECT_FALSE(limiter.allow(4.9, 2));
  EXPECT_TRUE(limiter.allow(5.1, 2));
  EXPECT_EQ(limiter.distinct_in_window(5.1), 1u);
}

TEST(SlidingWindow, WilliamsonDefaultFivePerSecond) {
  // The Williamson default: five distinct per second.
  SlidingWindowLimiter limiter(1.0, 5);
  int allowed = 0;
  for (IpAddress ip = 0; ip < 20; ++ip)
    if (limiter.allow(0.5, ip)) ++allowed;
  EXPECT_EQ(allowed, 5);
}

TEST(SlidingWindow, PropertyNeverMoreThanLimitInFlight) {
  Rng rng(1);
  SlidingWindowLimiter limiter(5.0, 16);
  // Fire a worm-like scan: many distinct addresses, random times. The
  // trailing-window distinct count must never exceed the limit.
  double t = 0.0;
  std::uint64_t allowed_total = 0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.exponential(20.0);
    const IpAddress dest = static_cast<IpAddress>(rng.next_u64());
    if (limiter.allow(t, dest)) ++allowed_total;
    EXPECT_LE(limiter.distinct_in_window(t), 16u);
  }
  // Long-run throughput is bounded by limit per window length.
  EXPECT_LE(static_cast<double>(allowed_total), 16.0 * (t / 5.0 + 1.0));
}

TEST(HybridWindow, Validation) {
  EXPECT_THROW(HybridWindowLimiter(5.0, 4, 5.0, 10), std::invalid_argument);
  EXPECT_THROW(HybridWindowLimiter(5.0, 4, 1.0, 10), std::invalid_argument);
}

TEST(HybridWindow, ShortWindowPreventsBursts) {
  // 4 per second short, 50 per minute long.
  HybridWindowLimiter limiter(1.0, 4, 60.0, 50);
  int allowed = 0;
  for (IpAddress ip = 0; ip < 10; ++ip)
    if (limiter.allow(0.2, ip)) ++allowed;
  EXPECT_EQ(allowed, 4);
}

TEST(HybridWindow, LongWindowLimitsSustainedRate) {
  HybridWindowLimiter limiter(1.0, 4, 60.0, 10);
  int allowed = 0;
  IpAddress next = 0;
  // 3 new destinations per second for a minute: short window never
  // binds, long window caps the total at 10.
  for (double t = 0.0; t < 59.0; t += 1.0)
    for (int k = 0; k < 3; ++k)
      if (limiter.allow(t, next++)) ++allowed;
  EXPECT_EQ(allowed, 10);
}

TEST(HybridWindow, RepeatsFreeInBoth) {
  HybridWindowLimiter limiter(1.0, 2, 60.0, 4);
  EXPECT_TRUE(limiter.allow(0.0, 1));
  for (double t = 0.1; t < 10.0; t += 0.5)
    EXPECT_TRUE(limiter.allow(t, 1));
}

}  // namespace
}  // namespace dq::ratelimit
