#include "ratelimit/token_bucket.hpp"

#include <gtest/gtest.h>

namespace dq::ratelimit {
namespace {

TEST(TokenBucket, Validation) {
  EXPECT_THROW(TokenBucket(0.0, 5.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(1.0, 0.5), std::invalid_argument);
}

TEST(TokenBucket, StartsFull) {
  TokenBucket b(1.0, 5.0);
  EXPECT_DOUBLE_EQ(b.available(0.0), 5.0);
}

TEST(TokenBucket, ConsumesAndRefills) {
  TokenBucket b(2.0, 4.0);
  EXPECT_TRUE(b.try_consume(0.0, 4.0));
  EXPECT_FALSE(b.try_consume(0.0, 1.0));
  // After 0.5 s, one token has refilled.
  EXPECT_TRUE(b.try_consume(0.5, 1.0));
  EXPECT_FALSE(b.try_consume(0.5, 0.5));
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket b(10.0, 3.0);
  EXPECT_TRUE(b.try_consume(0.0, 3.0));
  // A long idle period cannot bank more than the burst.
  EXPECT_DOUBLE_EQ(b.available(100.0), 3.0);
}

TEST(TokenBucket, NextAvailable) {
  TokenBucket b(2.0, 2.0);
  EXPECT_TRUE(b.try_consume(0.0, 2.0));
  EXPECT_DOUBLE_EQ(b.next_available(0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(b.next_available(0.0, 2.0), 1.0);
  // Already available: returns now.
  TokenBucket c(1.0, 1.0);
  EXPECT_DOUBLE_EQ(c.next_available(3.0, 1.0), 3.0);
}

TEST(TokenBucket, RejectsTimeTravel) {
  TokenBucket b(1.0, 1.0);
  EXPECT_TRUE(b.try_consume(5.0));
  EXPECT_THROW(b.try_consume(4.0), std::invalid_argument);
}

TEST(TokenBucket, LongRunRateConservation) {
  // Over a long horizon, admitted tokens ≈ rate * time + burst.
  TokenBucket b(3.0, 5.0);
  int admitted = 0;
  for (int ms = 0; ms < 100000; ms += 10) {  // 100 requests/s offered
    if (b.try_consume(ms / 1000.0)) ++admitted;
  }
  EXPECT_NEAR(admitted, 3.0 * 100.0 + 5.0, 2.0);
}

/// Property: the bucket never admits more than rate*T + burst in any
/// window, for several rates.
class BucketSweep : public ::testing::TestWithParam<double> {};

TEST_P(BucketSweep, NeverExceedsEnvelope) {
  const double rate = GetParam();
  TokenBucket b(rate, 2.0);
  int admitted = 0;
  const double horizon = 50.0;
  for (double t = 0.0; t < horizon; t += 0.01)
    if (b.try_consume(t)) ++admitted;
  EXPECT_LE(admitted, rate * horizon + 2.0 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, BucketSweep,
                         ::testing::Values(0.5, 1.0, 4.0, 20.0));

}  // namespace
}  // namespace dq::ratelimit
