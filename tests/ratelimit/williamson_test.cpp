#include "ratelimit/williamson.hpp"

#include <gtest/gtest.h>

namespace dq::ratelimit {
namespace {

WilliamsonConfig config() {
  WilliamsonConfig c;
  c.working_set_size = 3;
  c.clock_period = 1.0;
  c.queue_cap = 10;
  return c;
}

TEST(Williamson, Validation) {
  WilliamsonConfig c = config();
  c.working_set_size = 0;
  EXPECT_THROW(WilliamsonThrottle{c}, std::invalid_argument);
  c = config();
  c.clock_period = 0.0;
  EXPECT_THROW(WilliamsonThrottle{c}, std::invalid_argument);
}

TEST(Williamson, WorkingSetContactsPassImmediately) {
  WilliamsonThrottle throttle(config());
  // First contact to a new host consumes the idle release slot.
  EXPECT_EQ(throttle.submit(0.0, 1).action, Action::kAllow);
  // Repeat contact passes without touching the queue.
  const Outcome repeat = throttle.submit(0.1, 1);
  EXPECT_EQ(repeat.action, Action::kAllow);
  EXPECT_DOUBLE_EQ(repeat.release_time, 0.1);
  EXPECT_EQ(throttle.queue_length(0.1), 0u);
}

TEST(Williamson, NewDestinationsQueueAtOnePerPeriod) {
  WilliamsonThrottle throttle(config());
  EXPECT_EQ(throttle.submit(0.0, 1).action, Action::kAllow);
  // Burst of new destinations: they serialize one per clock period.
  const Outcome o2 = throttle.submit(0.0, 2);
  const Outcome o3 = throttle.submit(0.0, 3);
  EXPECT_EQ(o2.action, Action::kDelay);
  EXPECT_EQ(o3.action, Action::kDelay);
  EXPECT_GT(o3.release_time, o2.release_time);
  EXPECT_NEAR(o3.release_time - o2.release_time, 1.0, 1e-9);
}

TEST(Williamson, QueueDrainsOverTime) {
  WilliamsonThrottle throttle(config());
  throttle.submit(0.0, 1);
  throttle.submit(0.0, 2);
  throttle.submit(0.0, 3);
  EXPECT_GT(throttle.queue_length(0.5), 0u);
  EXPECT_EQ(throttle.queue_length(10.0), 0u);
  // After draining, 2 and 3 are in the working set: repeats pass.
  EXPECT_EQ(throttle.submit(10.0, 3).action, Action::kAllow);
}

TEST(Williamson, DropsAboveQueueCap) {
  WilliamsonConfig c = config();
  c.queue_cap = 2;
  WilliamsonThrottle throttle(c);
  throttle.submit(0.0, 1);  // allow (idle slot)
  throttle.submit(0.0, 2);  // queued
  throttle.submit(0.0, 3);  // queued
  const Outcome dropped = throttle.submit(0.0, 4);
  EXPECT_EQ(dropped.action, Action::kDrop);
  EXPECT_EQ(throttle.dropped(), 1u);
}

TEST(Williamson, ZeroQueueCapMeansUnbounded) {
  WilliamsonConfig c = config();
  c.queue_cap = 0;
  WilliamsonThrottle throttle(c);
  throttle.submit(0.0, 1);
  for (IpAddress ip = 2; ip < 100; ++ip)
    EXPECT_NE(throttle.submit(0.0, ip).action, Action::kDrop);
  EXPECT_EQ(throttle.dropped(), 0u);
}

TEST(Williamson, LruEviction) {
  WilliamsonThrottle throttle(config());  // working set of 3
  // Fill the working set over time so each release slot is free.
  throttle.submit(0.0, 1);
  throttle.submit(2.0, 2);
  throttle.submit(4.0, 3);
  // Touch 1 so 2 becomes LRU, then add 4 (evicts 2).
  throttle.submit(6.0, 1);
  throttle.submit(8.0, 4);
  // 2 is no longer in the working set: a contact to it queues or
  // consumes a slot rather than passing as a repeat... distinguish by
  // queue length after a back-to-back burst.
  throttle.submit(8.1, 5);            // queued (slot consumed by 4 at 8.0)
  const Outcome two = throttle.submit(8.1, 2);
  EXPECT_EQ(two.action, Action::kDelay);
  const Outcome one = throttle.submit(8.1, 1);  // still in working set
  EXPECT_EQ(one.action, Action::kAllow);
}

TEST(Williamson, WormScanThroughputBounded) {
  // A scanning worm offering 100 new destinations/second is limited to
  // ~1 new contact per period — the mechanism's whole point.
  WilliamsonConfig c;
  c.working_set_size = 5;
  c.clock_period = 1.0;
  c.queue_cap = 0;  // unbounded queue; measure delay growth
  WilliamsonThrottle throttle(c);
  IpAddress next = 1000;
  double max_release = 0.0;
  for (double t = 0.0; t < 10.0; t += 0.01) {
    const Outcome o = throttle.submit(t, next++);
    max_release = std::max(max_release, o.release_time);
  }
  // 1000 submissions over 10 s must stretch out to ~1000 periods.
  EXPECT_GT(max_release, 900.0);
}

}  // namespace
}  // namespace dq::ratelimit
