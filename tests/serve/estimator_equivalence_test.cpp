// Engine equivalence for the shared-bitmap estimator backend.
//
// Two claims, matching the docs/QUARANTINE.md tolerance contract:
//   * determinism — under EstimatorBackend::kSharedBitmap the serve
//     pipeline's decisions and report are byte-identical at any shard
//     count, and identical to a single engine fed the same stream
//     (block-confined sharing makes every estimate a pure function of
//     the block's own observation stream);
//   * accuracy — on a labeled department trace, the compact backend's
//     quarantine report tracks the exact backend's within a bounded
//     tolerance, and the failure-gate pool confirmation is one-sided
//     (it can suppress a raw-counter strike, never add one).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "trace/department.hpp"
#include "trace/quarantine_replay.hpp"

namespace dq::serve {
namespace {

/// Failure-ratio detector tuned so quarantines fire on the small
/// department trace (same shape as server_test.cpp's replay_config).
quarantine::QuarantineConfig exact_config() {
  quarantine::QuarantineConfig c;
  c.enabled = true;
  c.detector.window = 5.0;
  c.detector.contact_rate_threshold = 0.0;
  c.detector.distinct_dest_threshold = 0.0;
  c.detector.failure_ratio_threshold = 0.7;
  c.detector.failure_min_attempts = 3;
  c.policy.base_period = 120.0;
  c.policy.escalation = 4.0;
  c.policy.max_period = 1200.0;
  return c;
}

/// The same thresholds on the shared-bitmap backend, with small blocks
/// so the department's few dozen hosts span several blocks (and the
/// serve router actually distributes them across shards).
quarantine::QuarantineConfig compact_config() {
  quarantine::QuarantineConfig c = exact_config();
  c.estimator_backend = quarantine::EstimatorBackend::kSharedBitmap;
  c.compact.block_hosts = 16;
  c.compact.pool_bits_per_host = 6;
  c.compact.virtual_bits = 64;
  return c;
}

trace::Trace small_department_trace() {
  trace::DepartmentConfig config;
  config.normal_clients = 30;
  config.servers = 3;
  config.p2p_clients = 3;
  config.blaster_hosts = 4;
  config.welchia_hosts = 4;
  config.duration = 600.0;
  config.blaster.pause_epoch_mean = 120.0;
  config.welchia.sweep_interval_mean = 200.0;
  return trace::generate_department_trace(config, 11);
}

ServeSummary run_on_trace(const trace::Trace& t,
                          const quarantine::QuarantineConfig& config,
                          std::size_t shards,
                          std::ostream* decisions = nullptr) {
  ServeOptions options;
  options.shards = shards;
  options.num_hosts = static_cast<std::uint32_t>(t.num_hosts());
  options.quarantine = config;
  ServeServer server(options);
  TraceFlowSource source(t);
  return server.run(source, decisions, nullptr);
}

TEST(EstimatorEquivalence, CompactServeMatchesSingleEngineExactly) {
  const trace::Trace t = small_department_trace();
  const trace::QuarantineReplayReport expected =
      trace::replay_quarantine(t, compact_config());

  const ServeSummary summary = run_on_trace(t, compact_config(), 3);

  // Block-confined sharing: the sharded serve pipeline must reproduce
  // the single-engine replay bit for bit, exactly like the exact
  // backend does in ServeServer.TraceReplayMatchesSingleEngineExactly.
  const quarantine::QuarantineReport& a = summary.report;
  const quarantine::QuarantineReport& b = expected.overall;
  EXPECT_EQ(a.target_hosts, b.target_hosts);
  EXPECT_EQ(a.benign_hosts, b.benign_hosts);
  EXPECT_EQ(a.detected_targets, b.detected_targets);
  EXPECT_EQ(a.detection_rate, b.detection_rate);
  EXPECT_EQ(a.mean_detection_latency, b.mean_detection_latency);
  EXPECT_EQ(a.false_positive_hosts, b.false_positive_hosts);
  EXPECT_EQ(a.false_positive_rate, b.false_positive_rate);
  EXPECT_EQ(a.benign_quarantine_time, b.benign_quarantine_time);
  EXPECT_EQ(a.target_quarantine_time, b.target_quarantine_time);
  EXPECT_EQ(a.quarantine_events, b.quarantine_events);
  EXPECT_GT(a.detected_targets, 0.0);  // quarantines actually fired
}

TEST(EstimatorEquivalence, CompactDecisionsByteIdenticalAcrossShards) {
  const trace::Trace t = small_department_trace();
  std::vector<std::string> streams;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    std::ostringstream decisions;
    const ServeSummary summary =
        run_on_trace(t, compact_config(), shards, &decisions);
    EXPECT_EQ(summary.flows_decided, summary.flows_ingested);
    streams.push_back(decisions.str());
  }
  ASSERT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);
  EXPECT_EQ(streams[0], streams[3]);
}

TEST(EstimatorEquivalence, CompactSyntheticDecisionsByteIdenticalAcrossShards) {
  SyntheticConfig synth;
  synth.flows = 20'000;
  synth.hosts = 1024;
  synth.worm_fraction = 0.05;

  quarantine::QuarantineConfig config = compact_config();
  config.compact.block_hosts = 64;

  std::vector<std::string> streams;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    ServeOptions options;
    options.shards = shards;
    options.num_hosts = synth.hosts;
    options.quarantine = config;
    ServeServer server(options);
    SyntheticFlowSource source(synth);
    std::ostringstream decisions;
    const ServeSummary summary = server.run(source, &decisions, nullptr);
    EXPECT_EQ(summary.flows_decided, synth.flows);
    streams.push_back(decisions.str());
  }
  ASSERT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);
  EXPECT_EQ(streams[0], streams[3]);
}

TEST(EstimatorEquivalence, CompactReportTracksExactWithinTolerance) {
  const trace::Trace t = small_department_trace();
  const trace::QuarantineReplayReport exact =
      trace::replay_quarantine(t, exact_config());
  const trace::QuarantineReplayReport compact =
      trace::replay_quarantine(t, compact_config());

  const quarantine::QuarantineReport& e = exact.overall;
  const quarantine::QuarantineReport& c = compact.overall;
  ASSERT_GT(e.detected_targets, 0.0);

  // Tolerance contract (docs/QUARANTINE.md): with only the failure
  // gate enabled, the compact backend's pool confirmation is strictly
  // one-sided — it can suppress a raw-counter strike, never add one —
  // so detections and false positives never exceed the exact run's.
  EXPECT_LE(c.detected_targets, e.detected_targets);
  EXPECT_LE(c.false_positive_hosts, e.false_positive_hosts);
  EXPECT_LE(c.quarantine_events, e.quarantine_events);

  // And the suppression is rare: at these pool sizes the compact run
  // keeps at least 90% of the exact run's detections, and detection
  // latency moves by under one detector window.
  EXPECT_GE(c.detected_targets, 0.9 * e.detected_targets);
  if (c.mean_detection_latency >= 0.0 && e.mean_detection_latency >= 0.0) {
    EXPECT_NEAR(c.mean_detection_latency, e.mean_detection_latency,
                exact_config().detector.window);
  }
}

TEST(EstimatorEquivalence, DistinctThresholdGateAgreesOnTrace) {
  // Exercise the estimate-driven distinct-destination gate (the
  // failure-only configs above never consult it). The raw-contact gate
  // bounds compact strikes by exact ones on the high side only when
  // the estimate under-reads; over-reads from pool noise can add
  // strikes, so here the contract is a bounded FP delta, not a
  // one-sided inequality.
  quarantine::QuarantineConfig exact_cfg = exact_config();
  exact_cfg.detector.failure_ratio_threshold = 0.0;
  exact_cfg.detector.distinct_dest_threshold = 20.0;
  quarantine::QuarantineConfig compact_cfg = compact_config();
  compact_cfg.detector.failure_ratio_threshold = 0.0;
  compact_cfg.detector.distinct_dest_threshold = 20.0;

  const trace::Trace t = small_department_trace();
  const trace::QuarantineReplayReport exact =
      trace::replay_quarantine(t, exact_cfg);
  const trace::QuarantineReplayReport compact =
      trace::replay_quarantine(t, compact_cfg);

  const quarantine::QuarantineReport& e = exact.overall;
  const quarantine::QuarantineReport& c = compact.overall;
  ASSERT_GT(e.detected_targets, 0.0);
  EXPECT_GE(c.detected_targets, 0.9 * e.detected_targets);
  EXPECT_NEAR(c.false_positive_hosts, e.false_positive_hosts,
              0.05 * static_cast<double>(e.benign_hosts) + 1.0);
}

}  // namespace
}  // namespace dq::serve
