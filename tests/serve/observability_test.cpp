// Observability must be free: the span profiler, health sampler,
// Prometheus listener, and SLO tracking may never perturb the decision
// stream or the deterministic metric snapshot. These tests run the
// same synthetic stream with everything on and everything off and
// demand byte identity, then smoke the live /metrics endpoint.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <string>

#include "obs/span.hpp"
#include "serve/server.hpp"
#include "serve/source.hpp"

namespace dq::serve {
namespace {

SyntheticConfig synth_config() {
  SyntheticConfig synth;
  synth.flows = 40'000;
  synth.hosts = 1024;
  synth.worm_fraction = 0.05;
  return synth;
}

quarantine::QuarantineConfig hot_config() {
  quarantine::QuarantineConfig c;
  c.enabled = true;
  c.detector.window = 5.0;
  c.detector.contact_rate_threshold = 0.0;
  c.detector.distinct_dest_threshold = 0.0;
  c.detector.failure_ratio_threshold = 0.7;
  c.detector.failure_min_attempts = 5;
  c.policy.base_period = 5.0;
  c.policy.escalation = 4.0;
  c.policy.max_period = 50.0;
  return c;
}

struct RunCapture {
  std::string decisions;
  std::string det_snapshot;  ///< deterministic-only registry snapshot
};

/// Runs the synthetic stream at `shards` with the full observability
/// surface on (observed=true) or entirely off.
RunCapture run_synthetic(std::size_t shards, bool observed) {
  ServeOptions options;
  options.shards = shards;
  options.num_hosts = 1024;
  options.quarantine = hot_config();
  obs::Profiler profiler;
  // slo_ms stays off here: it deliberately adds a "slo_breached" key
  // to the summary line (an opt-in wall-clock field), which would
  // break the byte comparison for the wrong reason.
  if (observed) {
    options.profiler = &profiler;
    options.metrics_interval_ms = 20;
    options.metrics_addr = "127.0.0.1:0";
  }
  SyntheticFlowSource source(synth_config());
  ServeServer server(options);
  std::ostringstream decisions;
  std::ostringstream metrics;
  const ServeSummary summary =
      server.run(source, &decisions, observed ? &metrics : nullptr);
  EXPECT_EQ(summary.flows_decided, summary.flows_ingested);
  if (observed) {
    EXPECT_NE(server.metrics_port(), 0);
    EXPECT_GT(profiler.total_spans(), 0u);
    EXPECT_FALSE(metrics.str().empty());
  } else {
    EXPECT_EQ(server.metrics_port(), 0);
  }
  RunCapture capture;
  capture.decisions = decisions.str();
  capture.det_snapshot =
      server.metrics().snapshot(/*deterministic_only=*/true).dump();
  return capture;
}

TEST(ServeObservability, ProfilerSamplerAndListenerNeverPerturbDecisions) {
  for (const std::size_t shards : {1u, 4u}) {
    const RunCapture off = run_synthetic(shards, /*observed=*/false);
    const RunCapture on = run_synthetic(shards, /*observed=*/true);
    ASSERT_FALSE(off.decisions.empty());
    EXPECT_EQ(off.decisions, on.decisions) << "shards=" << shards;
    EXPECT_EQ(off.det_snapshot, on.det_snapshot) << "shards=" << shards;
  }
}

TEST(ServeObservability, SloSummaryFieldsAreConsistent) {
  ServeOptions options;
  options.shards = 2;
  options.num_hosts = 1024;
  options.quarantine = hot_config();
  // A 1 ns SLO effectively breaches on every flow — the breach
  // counter must cover the stream and flip the summary flag.
  options.slo_ms = 1e-6;
  SyntheticFlowSource source(synth_config());
  ServeServer server(options);
  const ServeSummary summary = server.run(source, nullptr, nullptr);
  EXPECT_GT(summary.slo_breaches, 0u);
  EXPECT_TRUE(summary.slo_breached);
  EXPECT_DOUBLE_EQ(summary.slo_ms, 1e-6);
  // The opted-in summary key appears in the decision-stream JSON.
  EXPECT_NE(summary.to_json().dump().find("\"slo_breached\":true"),
            std::string::npos);

  // No SLO configured: fields stay zero and the key stays out.
  ServeOptions plain;
  plain.shards = 2;
  plain.num_hosts = 1024;
  plain.quarantine = hot_config();
  SyntheticFlowSource source2(synth_config());
  ServeServer server2(plain);
  const ServeSummary s2 = server2.run(source2, nullptr, nullptr);
  EXPECT_EQ(s2.slo_breaches, 0u);
  EXPECT_FALSE(s2.slo_breached);
  EXPECT_EQ(s2.to_json().dump().find("slo_breached"), std::string::npos);
}

TEST(ServeObservability, NegativeSloIsRejected) {
  ServeOptions options;
  options.slo_ms = -1.0;
  EXPECT_THROW(ServeServer{options}, std::invalid_argument);
}

/// Plain-socket fetch of /metrics (empty string on connect failure).
std::string fetch_metrics(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, n);
  ::close(fd);
  return response;
}

TEST(ServeObservability, MetricsEndpointServesPrometheusText) {
  ServeOptions options;
  options.shards = 4;
  options.num_hosts = 1024;
  options.quarantine = hot_config();
  options.metrics_addr = "127.0.0.1:0";
  SyntheticFlowSource source(synth_config());
  ServeServer server(options);
  // The listener is live from construction: scrape before run() works
  // (zeros), and the port is already known.
  const std::uint16_t port = server.metrics_port();
  ASSERT_NE(port, 0);
  server.run(source, nullptr, nullptr);

  const std::string response = fetch_metrics(port);
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  // Per-shard health gauges and latency quantiles, per the acceptance
  // criteria; shard labels cover the whole shard range.
  EXPECT_NE(response.find("# TYPE serve_shard_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(response.find("serve_shard_queue_depth{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(response.find("serve_shard_queue_depth{shard=\"3\"}"),
            std::string::npos);
  EXPECT_NE(response.find("serve_decision_latency_ns_bucket"),
            std::string::npos);
  EXPECT_NE(response.find("serve_decision_latency_ns_quantile{q=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(response.find("serve_flows_ingested 40000"), std::string::npos);
}

}  // namespace
}  // namespace dq::serve
