// Chaos/robustness coverage for the serve pipeline: checkpoint/restore
// byte-identity across shard counts, overload shedding, the stall
// watchdog, transient-sink retries, and corrupt-checkpoint rejection —
// all driven through the failpoint registry (serve/failpoints.hpp).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/checkpoint.hpp"
#include "serve/failpoints.hpp"
#include "serve/server.hpp"
#include "serve/source.hpp"

namespace dq::serve {
namespace {

quarantine::QuarantineConfig serve_config() {
  quarantine::QuarantineConfig c;
  c.enabled = true;
  c.detector.window = 0.05;
  c.detector.contact_rate_threshold = 0.0;
  c.detector.distinct_dest_threshold = 0.0;
  c.detector.failure_ratio_threshold = 0.7;
  c.detector.failure_min_attempts = 3;
  c.policy.base_period = 0.5;
  c.policy.escalation = 2.0;
  c.policy.max_period = 4.0;
  return c;
}

SyntheticConfig synth_config(std::uint64_t flows) {
  SyntheticConfig s;
  s.flows = flows;
  s.hosts = 512;
  s.worm_fraction = 0.05;
  s.flow_interval = 1e-4;
  return s;
}

ServeOptions base_options(std::size_t shards) {
  ServeOptions o;
  o.shards = shards;
  o.num_hosts = 512;
  o.quarantine = serve_config();
  return o;
}

struct RunResult {
  ServeSummary summary;
  std::string decisions;
  campaign::JsonValue counters;  ///< metrics snapshot "counters" object
};

RunResult run_synthetic(const ServeOptions& options,
                        const SyntheticConfig& synth) {
  ServeServer server(options);
  SyntheticFlowSource source(synth);
  std::ostringstream decisions;
  RunResult r;
  r.summary = server.run(source, &decisions, nullptr);
  r.decisions = decisions.str();
  r.counters = server.metrics().snapshot().at("counters");
  return r;
}

std::uint64_t counter_value(const campaign::JsonValue& counters,
                            std::string_view name) {
  const campaign::JsonValue* v = counters.find(name);
  return v == nullptr ? 0 : v->as_uint();
}

/// Decision stream minus its trailing summary line.
std::string drop_summary_line(const std::string& s) {
  if (s.empty()) return s;
  const auto pos = s.rfind('\n', s.size() - 2);
  return pos == std::string::npos ? std::string() : s.substr(0, pos + 1);
}

std::filesystem::path temp_file(const std::string& tag) {
  return std::filesystem::temp_directory_path() /
         ("dq_robustness_" + std::to_string(::getpid()) + "_" + tag);
}

struct TempFile {
  explicit TempFile(const std::string& tag) : path(temp_file(tag)) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  std::filesystem::path path;
};

TEST(ServeRobustness, RestoreIsByteIdenticalAcrossShardCounts) {
  constexpr std::uint64_t kFlows = 20'000;
  constexpr std::uint64_t kCut = 12'000;
  const std::string full =
      run_synthetic(base_options(1), synth_config(kFlows)).decisions;
  ASSERT_FALSE(full.empty());

  // Checkpoint the first kCut flows at one shard count, resume at
  // another (both directions): prefix + resumed must equal the
  // uninterrupted stream byte for byte, summary line included.
  for (const auto& [ck_shards, resume_shards] :
       {std::pair<std::size_t, std::size_t>{1, 4}, {4, 1}}) {
    TempFile ck("restore_ck");
    ServeOptions prefix_opt = base_options(ck_shards);
    prefix_opt.checkpoint_path = ck.path.string();
    const RunResult prefix =
        run_synthetic(prefix_opt, synth_config(kCut));
    EXPECT_EQ(prefix.summary.flows_ingested, kCut);

    ServeOptions resume_opt = base_options(resume_shards);
    resume_opt.restore = std::make_shared<const CheckpointState>(
        load_checkpoint_file(ck.path.string()));
    SyntheticConfig resume_synth = synth_config(kFlows);
    resume_synth.start_flow = kCut;
    const RunResult resumed = run_synthetic(resume_opt, resume_synth);

    EXPECT_EQ(resumed.summary.flows_ingested, kFlows);
    EXPECT_EQ(resumed.summary.flows_decided, kFlows);
    EXPECT_EQ(drop_summary_line(prefix.decisions) + resumed.decisions,
              full)
        << "checkpoint at " << ck_shards << " shards, resume at "
        << resume_shards;
  }
}

TEST(ServeRobustness, CheckpointBytesAreShardCountInvariant) {
  constexpr std::uint64_t kCut = 12'000;
  std::string first;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    TempFile ck("invariant_ck");
    ServeOptions opt = base_options(shards);
    opt.checkpoint_path = ck.path.string();
    run_synthetic(opt, synth_config(kCut));
    std::ifstream in(ck.path);
    std::stringstream bytes;
    bytes << in.rdbuf();
    ASSERT_FALSE(bytes.str().empty());
    if (first.empty())
      first = bytes.str();
    else
      EXPECT_EQ(bytes.str(), first) << shards << " shards";
  }

  // And the document round-trips through the typed state exactly.
  const CheckpointState state =
      CheckpointState::from_json(campaign::JsonValue::parse(first));
  EXPECT_EQ(state.flows_ingested, kCut);
  EXPECT_EQ(state.num_hosts, 512u);
  EXPECT_EQ(state.to_json().dump() + "\n", first);
}

TEST(ServeRobustness, PeriodicCheckpointsLandOnFinalState) {
  TempFile ck("periodic_ck");
  ServeOptions opt = base_options(2);
  opt.checkpoint_path = ck.path.string();
  opt.checkpoint_interval_flows = 3'000;
  const RunResult r = run_synthetic(opt, synth_config(10'000));
  EXPECT_EQ(r.summary.flows_ingested, 10'000u);
  const CheckpointState state = load_checkpoint_file(ck.path.string());
  EXPECT_EQ(state.flows_ingested, 10'000u);
}

TEST(ServeRobustness, ShedPolicyDegradesInsteadOfStalling) {
  // Shard 0's worker needs 1 ms per flow; with 64-slot queues the
  // router must shed to keep ingesting. The run stays bounded: shed
  // flows are dropped at the router, never queued.
  ScopedFailpoints fp("slow_shard:0:1000");
  ServeOptions opt = base_options(2);
  opt.overload = OverloadPolicy::kShed;
  opt.queue_capacity = 64;
  const RunResult r = run_synthetic(opt, synth_config(30'000));

  EXPECT_GT(r.summary.shed_flows, 0u);
  EXPECT_TRUE(r.summary.degraded);
  EXPECT_EQ(r.summary.flows_ingested, 30'000u);
  // Every ingested flow is either decided or counted shed — none lost.
  EXPECT_EQ(r.summary.flows_decided + r.summary.shed_flows,
            r.summary.flows_ingested);
  EXPECT_EQ(counter_value(r.counters, "serve.shed_flows"),
            r.summary.shed_flows);
  // The summary line records the degradation.
  EXPECT_NE(r.decisions.find("\"degraded\":true"), std::string::npos);
}

TEST(ServeRobustness, StallWatchdogFailsTheRunWithDiagnostic) {
  // Shard 0 is effectively wedged (1 s per flow); in block mode the
  // router would wait forever — the watchdog must fail the run in
  // bounded time with a per-shard diagnostic instead.
  ScopedFailpoints fp("slow_shard:0:1000000");
  ServeOptions opt = base_options(2);
  opt.overload = OverloadPolicy::kBlock;
  opt.queue_capacity = 16;
  opt.stall_timeout_seconds = 0.3;
  ServeServer server(opt);
  SyntheticFlowSource source(synth_config(50'000));
  try {
    server.run(source, nullptr, nullptr);
    FAIL() << "expected ServeStallError";
  } catch (const ServeStallError& e) {
    EXPECT_NE(std::string(e.what()).find("shard 0"), std::string::npos)
        << e.what();
  }
}

TEST(ServeRobustness, BlockedRouterCountsStallsAndRecovers) {
  // A merely slow shard (300 us per flow) in block mode: the run still
  // completes with every flow decided, and the bounded-backoff paths
  // record the pressure in wall-clock counters.
  ScopedFailpoints fp("slow_shard:0:300");
  ServeOptions opt = base_options(2);
  opt.overload = OverloadPolicy::kBlock;
  opt.queue_capacity = 16;
  const RunResult r = run_synthetic(opt, synth_config(2'000));
  EXPECT_EQ(r.summary.flows_ingested, 2'000u);
  EXPECT_EQ(r.summary.flows_decided, 2'000u);
  EXPECT_EQ(r.summary.shed_flows, 0u);
  EXPECT_FALSE(r.summary.degraded);
  EXPECT_GE(counter_value(r.counters, "serve.router_stalls"), 1u);
}

TEST(ServeRobustness, TransientSinkErrorsRetryWithoutChangingTheStream) {
  const RunResult clean =
      run_synthetic(base_options(2), synth_config(20'000));
  ScopedFailpoints fp("sink_error:3");
  const RunResult faulty =
      run_synthetic(base_options(2), synth_config(20'000));
  EXPECT_EQ(faulty.decisions, clean.decisions);
  EXPECT_EQ(counter_value(faulty.counters, "serve.sink_retries"), 3u);
  EXPECT_EQ(counter_value(clean.counters, "serve.sink_retries"), 0u);
}

TEST(ServeRobustness, TornCheckpointWriteIsRejectedOnRestore) {
  TempFile ck("torn_ck");
  obs::TraceRing ring(obs::kDefaultRingCapacity);
  {
    ScopedFailpoints fp("torn_checkpoint:1");
    ServeOptions opt = base_options(1);
    opt.checkpoint_path = ck.path.string();
    opt.obs.trace = &ring;
    run_synthetic(opt, synth_config(5'000));
  }
  EXPECT_THROW(load_checkpoint_file(ck.path.string()), CheckpointError);
  // The service believed the write succeeded — the trace records it;
  // the torn bytes are caught on restore, not write.
  std::size_t writes = 0;
  for (const obs::Event& e : ring.events())
    writes += e.kind == obs::EventKind::kCheckpointWrite ? 1 : 0;
  EXPECT_EQ(writes, 1u);
}

TEST(ServeRobustness, CorruptCheckpointsRaiseCheckpointError) {
  // Missing file.
  EXPECT_THROW(load_checkpoint_file(temp_file("missing").string()),
               CheckpointError);
  // Not JSON at all.
  {
    TempFile f("garbage_ck");
    std::ofstream(f.path) << "definitely not json\n";
    EXPECT_THROW(load_checkpoint_file(f.path.string()), CheckpointError);
  }
  // Valid JSON, wrong document.
  {
    TempFile f("wrongdoc_ck");
    std::ofstream(f.path) << "{\"format\":\"something_else\"}\n";
    EXPECT_THROW(load_checkpoint_file(f.path.string()), CheckpointError);
  }
  // A truncated copy of a real checkpoint.
  {
    TempFile good("good_ck");
    ServeOptions opt = base_options(1);
    opt.checkpoint_path = good.path.string();
    run_synthetic(opt, synth_config(5'000));
    std::ifstream in(good.path);
    std::stringstream bytes;
    bytes << in.rdbuf();
    TempFile torn("truncated_ck");
    std::ofstream(torn.path)
        << bytes.str().substr(0, bytes.str().size() / 2);
    EXPECT_THROW(load_checkpoint_file(torn.path.string()),
                 CheckpointError);
  }
}

TEST(ServeRobustness, RestoreValidatesHostCountAndConfig) {
  TempFile ck("validate_ck");
  ServeOptions opt = base_options(1);
  opt.checkpoint_path = ck.path.string();
  run_synthetic(opt, synth_config(5'000));
  const auto restore = std::make_shared<const CheckpointState>(
      load_checkpoint_file(ck.path.string()));

  {
    ServeOptions bad = base_options(1);
    bad.num_hosts = 1024;  // checkpoint was taken with 512
    bad.restore = restore;
    EXPECT_THROW(ServeServer{bad}, std::invalid_argument);
  }
  {
    ServeOptions bad = base_options(1);
    bad.quarantine.policy.base_period = 99.0;  // different thresholds
    bad.restore = restore;
    EXPECT_THROW(ServeServer{bad}, std::invalid_argument);
  }
}

// ---------------------------------------------------------------------
// Shared-bitmap backend: checkpoints gain an "estimator_store" section
// (the block pools), which must survive shard-count changes and reject
// corruption with typed errors.

ServeOptions compact_options(std::size_t shards) {
  ServeOptions o = base_options(shards);
  o.quarantine.estimator_backend =
      quarantine::EstimatorBackend::kSharedBitmap;
  o.quarantine.compact.block_hosts = 64;  // 512 hosts -> 8 blocks
  o.quarantine.compact.pool_bits_per_host = 6;
  o.quarantine.compact.virtual_bits = 64;
  return o;
}

/// Copy of `obj` minus one key (JsonValue has no erase).
campaign::JsonValue without_key(const campaign::JsonValue& obj,
                                std::string_view key) {
  campaign::JsonValue out = campaign::JsonValue::object();
  for (const auto& [k, v] : obj.members())
    if (k != key) out.set(k, v);
  return out;
}

TEST(ServeRobustness, CompactRestoreIsByteIdenticalAcrossShardCounts) {
  constexpr std::uint64_t kFlows = 20'000;
  constexpr std::uint64_t kCut = 12'000;
  const std::string full =
      run_synthetic(compact_options(1), synth_config(kFlows)).decisions;
  ASSERT_FALSE(full.empty());

  for (const auto& [ck_shards, resume_shards] :
       {std::pair<std::size_t, std::size_t>{1, 4}, {4, 1}}) {
    TempFile ck("compact_restore_ck");
    ServeOptions prefix_opt = compact_options(ck_shards);
    prefix_opt.checkpoint_path = ck.path.string();
    const RunResult prefix =
        run_synthetic(prefix_opt, synth_config(kCut));
    EXPECT_EQ(prefix.summary.flows_ingested, kCut);

    ServeOptions resume_opt = compact_options(resume_shards);
    resume_opt.restore = std::make_shared<const CheckpointState>(
        load_checkpoint_file(ck.path.string()));
    SyntheticConfig resume_synth = synth_config(kFlows);
    resume_synth.start_flow = kCut;
    const RunResult resumed = run_synthetic(resume_opt, resume_synth);

    EXPECT_EQ(resumed.summary.flows_ingested, kFlows);
    EXPECT_EQ(drop_summary_line(prefix.decisions) + resumed.decisions,
              full)
        << "checkpoint at " << ck_shards << " shards, resume at "
        << resume_shards;
  }
}

TEST(ServeRobustness, CompactCheckpointBytesAreShardCountInvariant) {
  constexpr std::uint64_t kCut = 12'000;
  std::string first;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    TempFile ck("compact_invariant_ck");
    ServeOptions opt = compact_options(shards);
    opt.checkpoint_path = ck.path.string();
    run_synthetic(opt, synth_config(kCut));
    std::ifstream in(ck.path);
    std::stringstream bytes;
    bytes << in.rdbuf();
    ASSERT_FALSE(bytes.str().empty());
    if (first.empty())
      first = bytes.str();
    else
      EXPECT_EQ(bytes.str(), first) << shards << " shards";
  }
  EXPECT_NE(first.find("\"estimator_store\""), std::string::npos);

  // The document round-trips through the typed state exactly — the
  // direct serializer and the JsonValue-tree dump must agree byte for
  // byte on the store section too.
  const CheckpointState state =
      CheckpointState::from_json(campaign::JsonValue::parse(first));
  EXPECT_FALSE(state.store.is_null());
  EXPECT_EQ(state.to_json().dump() + "\n", first);
}

TEST(ServeRobustness, CorruptEstimatorStoreIsRejectedOnRestore) {
  TempFile ck("compact_corrupt_ck");
  ServeOptions opt = compact_options(2);
  opt.checkpoint_path = ck.path.string();
  run_synthetic(opt, synth_config(5'000));
  const CheckpointState good = load_checkpoint_file(ck.path.string());
  ASSERT_FALSE(good.store.is_null());

  // Store section dropped from a compact checkpoint.
  {
    CheckpointState bad = good;
    bad.store = campaign::JsonValue();
    ServeOptions r = compact_options(2);
    r.restore = std::make_shared<const CheckpointState>(bad);
    EXPECT_THROW(ServeServer{r}, std::invalid_argument);
  }
  // Truncated pool array.
  {
    CheckpointState bad = good;
    campaign::JsonValue pool = campaign::JsonValue::array();
    const auto& words = good.store.at("pool").items();
    for (std::size_t i = 0; i + 1 < words.size(); ++i)
      pool.push_back(words[i]);
    campaign::JsonValue store = without_key(good.store, "pool");
    store.set("pool", std::move(pool));
    bad.store = std::move(store);
    ServeOptions r = compact_options(2);
    r.restore = std::make_shared<const CheckpointState>(bad);
    EXPECT_THROW(ServeServer{r}, std::invalid_argument);
  }
  // Wrong geometry (block count from some other config).
  {
    CheckpointState bad = good;
    campaign::JsonValue store = without_key(good.store, "num_blocks");
    store.set("num_blocks", campaign::JsonValue::integer(99));
    bad.store = std::move(store);
    ServeOptions r = compact_options(2);
    r.restore = std::make_shared<const CheckpointState>(bad);
    EXPECT_THROW(ServeServer{r}, std::invalid_argument);
  }
}

TEST(ServeRobustness, EstimatorStoreOnExactCheckpointRejected) {
  TempFile ck("exact_store_ck");
  ServeOptions opt = base_options(1);
  opt.checkpoint_path = ck.path.string();
  run_synthetic(opt, synth_config(5'000));
  CheckpointState bad = load_checkpoint_file(ck.path.string());
  ASSERT_TRUE(bad.store.is_null());
  bad.store = campaign::JsonValue::object();  // store on an exact engine

  ServeOptions r = base_options(1);
  r.restore = std::make_shared<const CheckpointState>(bad);
  EXPECT_THROW(ServeServer{r}, std::invalid_argument);
}

TEST(ServeRobustness, ParseErrorSamplesSurfaceInSummary) {
  std::stringstream in;
  const std::string long_junk(300, 'x');
  in << "{\"t\":0.1,\"host\":1,\"dest\":2,\"failed\":false}\n"
     << "not json at all\n"
     << long_junk << "\n"
     << "{\"t\":0.2,\"host\":9999,\"dest\":2,\"failed\":false}\n"
     << "{broken\n"
     << "[1,2,3]\n"
     << "{\"host\":1}\n"
     << "still bad\n"
     << "{\"t\":0.3,\"host\":2,\"dest\":3,\"failed\":true}\n";
  NdjsonFlowSource source(in, 512);
  ServeOptions opt = base_options(2);
  ServeServer server(opt);
  std::ostringstream decisions;
  const ServeSummary summary = server.run(source, &decisions, nullptr);

  EXPECT_EQ(summary.flows_ingested, 2u);
  EXPECT_EQ(summary.parse_errors, 7u);
  // Only the first kMaxErrorSamples are kept, each capped in length.
  ASSERT_EQ(summary.parse_error_samples.size(),
            NdjsonFlowSource::kMaxErrorSamples);
  EXPECT_EQ(summary.parse_error_samples[0], "not json at all");
  EXPECT_EQ(summary.parse_error_samples[1].size(),
            NdjsonFlowSource::kMaxSampleLength);
  EXPECT_NE(decisions.str().find("\"parse_error_samples\":[\"not json"),
            std::string::npos);
}

TEST(ServeRobustness, CleanRunsOmitParseErrorSamples) {
  const RunResult r = run_synthetic(base_options(1), synth_config(100));
  EXPECT_TRUE(r.summary.parse_error_samples.empty());
  EXPECT_EQ(r.decisions.find("parse_error_samples"), std::string::npos);
}

TEST(ServeRobustness, SyntheticStartFlowSkipsDeterministically) {
  SyntheticConfig full_cfg = synth_config(1'000);
  SyntheticConfig tail_cfg = full_cfg;
  tail_cfg.start_flow = 400;
  SyntheticFlowSource full(full_cfg);
  SyntheticFlowSource tail(tail_cfg);
  Flow f;
  for (int i = 0; i < 400; ++i) ASSERT_TRUE(full.next(f));
  Flow g;
  while (tail.next(g)) {
    ASSERT_TRUE(full.next(f));
    EXPECT_EQ(f.time, g.time);
    EXPECT_EQ(f.host, g.host);
    EXPECT_EQ(f.dest, g.dest);
    EXPECT_EQ(f.failed, g.failed);
    EXPECT_EQ(f.labeled_worm, g.labeled_worm);
  }
  EXPECT_FALSE(full.next(f));  // both exhausted together
}

TEST(ServeRobustness, FailpointGrammarIsValidated) {
  Failpoints fp;
  EXPECT_THROW(fp.configure("bogus"), std::invalid_argument);
  EXPECT_THROW(fp.configure("slow_shard:1"), std::invalid_argument);
  EXPECT_THROW(fp.configure("slow_shard:a:b"), std::invalid_argument);
  EXPECT_THROW(fp.configure("sink_error:x"), std::invalid_argument);
  EXPECT_THROW(fp.configure("torn_checkpoint:"), std::invalid_argument);
  EXPECT_THROW(fp.configure("sink_error:1,junk"), std::invalid_argument);

  fp.configure("slow_shard:2:50,sink_error:1");
  EXPECT_TRUE(fp.active());
  EXPECT_EQ(fp.slow_shard_micros(2), 50u);
  EXPECT_EQ(fp.slow_shard_micros(0), 0u);
  EXPECT_TRUE(fp.consume_sink_error());
  EXPECT_FALSE(fp.consume_sink_error());
  fp.configure("");
  EXPECT_FALSE(fp.active());
}

// ---------------------------------------------------------------------
// Robustness transitions are observable: the serve pipeline emits
// TraceRing events for checkpoint writes/restores, shed episodes, sink
// retries, and stalls, so chaos runs can be audited after the fact.

std::size_t count_events(const obs::TraceRing& ring, obs::EventKind kind) {
  std::size_t n = 0;
  for (const obs::Event& e : ring.events()) n += e.kind == kind ? 1 : 0;
  return n;
}

TEST(ServeRobustness, ShedEpisodesEmitTraceEvents) {
  ScopedFailpoints fp("slow_shard:0:1000");
  obs::TraceRing ring(obs::kDefaultRingCapacity);
  ServeOptions opt = base_options(2);
  opt.overload = OverloadPolicy::kShed;
  opt.queue_capacity = 64;
  opt.obs.trace = &ring;
  const RunResult r = run_synthetic(opt, synth_config(30'000));
  ASSERT_GT(r.summary.shed_flows, 0u);

  // Episodes are bracketed: every shed_start has a matching shed_end,
  // and the shed_end values (flows shed per episode) sum to the total.
  const std::size_t starts = count_events(ring, obs::EventKind::kShedStart);
  const std::size_t ends = count_events(ring, obs::EventKind::kShedEnd);
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(starts, ends);
  std::uint64_t shed_total = 0;
  for (const obs::Event& e : ring.events())
    if (e.kind == obs::EventKind::kShedEnd) shed_total += e.value;
  EXPECT_EQ(shed_total, r.summary.shed_flows);
}

TEST(ServeRobustness, SinkRetriesEmitTraceEvents) {
  ScopedFailpoints fp("sink_error:3");
  obs::TraceRing ring(obs::kDefaultRingCapacity);
  ServeOptions opt = base_options(2);
  opt.obs.trace = &ring;
  run_synthetic(opt, synth_config(20'000));
  const std::size_t retries =
      count_events(ring, obs::EventKind::kSinkRetry);
  EXPECT_EQ(retries, 3u);
}

TEST(ServeRobustness, CheckpointWriteAndRestoreEmitTraceEvents) {
  TempFile ck("obs_ck");
  obs::TraceRing write_ring(obs::kDefaultRingCapacity);
  {
    ServeOptions opt = base_options(2);
    opt.checkpoint_path = ck.path.string();
    opt.checkpoint_interval_flows = 3'000;
    opt.obs.trace = &write_ring;
    run_synthetic(opt, synth_config(10'000));
  }
  // 10k flows / 3k interval = 3 periodic writes, plus the final one.
  EXPECT_EQ(count_events(write_ring, obs::EventKind::kCheckpointWrite), 4u);
  // The final write records the full stream.
  std::uint64_t last_flows = 0;
  for (const obs::Event& e : write_ring.events())
    if (e.kind == obs::EventKind::kCheckpointWrite) last_flows = e.value;
  EXPECT_EQ(last_flows, 10'000u);

  obs::TraceRing restore_ring(obs::kDefaultRingCapacity);
  ServeOptions resume = base_options(2);
  resume.restore = std::make_shared<const CheckpointState>(
      load_checkpoint_file(ck.path.string()));
  resume.obs.trace = &restore_ring;
  SyntheticConfig tail = synth_config(12'000);
  tail.start_flow = 10'000;
  run_synthetic(resume, tail);
  const std::vector<obs::Event> events = restore_ring.events();
  ASSERT_FALSE(events.empty());
  // The restore event leads the trace and carries the restored flow
  // count.
  EXPECT_EQ(events[0].kind, obs::EventKind::kCheckpointRestore);
  EXPECT_EQ(events[0].value, 10'000u);
}

TEST(ServeRobustness, StallsEmitATraceEventNamingTheShard) {
  ScopedFailpoints fp("slow_shard:1:1000000");
  obs::TraceRing ring(obs::kDefaultRingCapacity);
  ServeOptions opt = base_options(2);
  opt.overload = OverloadPolicy::kBlock;
  opt.queue_capacity = 16;
  opt.stall_timeout_seconds = 0.3;
  opt.obs.trace = &ring;
  ServeServer server(opt);
  SyntheticFlowSource source(synth_config(50'000));
  EXPECT_THROW(server.run(source, nullptr, nullptr), ServeStallError);
  bool found = false;
  for (const obs::Event& e : ring.events())
    if (e.kind == obs::EventKind::kStall) {
      found = true;
      EXPECT_EQ(e.id, 1u);
    }
  EXPECT_TRUE(found);
}

TEST(ServeRobustness, ProfilerOnOrOffKeepsDecisionBytes) {
  // Chaos leg: a sink-retry run with the profiler on must still equal
  // the clean, unprofiled stream byte for byte (retries are invisible,
  // spans are invisible).
  const std::string clean =
      run_synthetic(base_options(2), synth_config(20'000)).decisions;
  ASSERT_FALSE(clean.empty());
  {
    ScopedFailpoints fp("sink_error:3");
    obs::Profiler profiler;
    ServeOptions opt = base_options(2);
    opt.profiler = &profiler;
    const RunResult r = run_synthetic(opt, synth_config(20'000));
    EXPECT_GT(profiler.total_spans(), 0u);
    EXPECT_EQ(r.decisions, clean);
    EXPECT_EQ(counter_value(r.counters, "serve.sink_retries"), 3u);
  }
  // Failpoint-free leg at a different shard count.
  obs::Profiler profiler;
  ServeOptions opt = base_options(4);
  opt.profiler = &profiler;
  const std::string profiled =
      run_synthetic(opt, synth_config(20'000)).decisions;
  EXPECT_GT(profiler.total_spans(), 0u);
  EXPECT_EQ(profiled, clean);
}

TEST(ServeRobustness, ServerOptionValidation) {
  {
    ServeOptions opt = base_options(1);
    opt.stall_timeout_seconds = -1.0;
    EXPECT_THROW(ServeServer{opt}, std::invalid_argument);
  }
  {
    ServeOptions opt = base_options(1);
    opt.checkpoint_interval_flows = 100;  // interval without a path
    EXPECT_THROW(ServeServer{opt}, std::invalid_argument);
  }
}

}  // namespace
}  // namespace dq::serve
