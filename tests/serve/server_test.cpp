#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "trace/department.hpp"
#include "trace/quarantine_replay.hpp"

namespace dq::serve {
namespace {

/// Failure-ratio-only detector like the replay tests', tuned hotter
/// (3 blind contacts out of 70% in a 5 s window) so quarantines
/// actually fire on the small department trace used here.
quarantine::QuarantineConfig replay_config() {
  quarantine::QuarantineConfig c;
  c.enabled = true;
  c.detector.window = 5.0;
  c.detector.contact_rate_threshold = 0.0;
  c.detector.distinct_dest_threshold = 0.0;
  c.detector.failure_ratio_threshold = 0.7;
  c.detector.failure_min_attempts = 3;
  c.policy.base_period = 120.0;
  c.policy.escalation = 4.0;
  c.policy.max_period = 1200.0;
  return c;
}

trace::Trace small_department_trace() {
  trace::DepartmentConfig config;
  config.normal_clients = 30;
  config.servers = 3;
  config.p2p_clients = 3;
  config.blaster_hosts = 4;
  config.welchia_hosts = 4;
  config.duration = 600.0;
  // The defaults model multi-day duty cycles (scan epochs separated by
  // ~40 min pauses); compress them so a 600 s trace contains scanning.
  config.blaster.pause_epoch_mean = 120.0;
  config.welchia.sweep_interval_mean = 200.0;
  return trace::generate_department_trace(config, 11);
}

ServeSummary run_on_trace(const trace::Trace& t, std::size_t shards,
                          std::ostream* decisions = nullptr,
                          std::ostream* metrics = nullptr) {
  ServeOptions options;
  options.shards = shards;
  options.num_hosts = static_cast<std::uint32_t>(t.num_hosts());
  options.quarantine = replay_config();
  ServeServer server(options);
  TraceFlowSource source(t);
  return server.run(source, decisions, metrics);
}

TEST(ServeServer, TraceReplayMatchesSingleEngineExactly) {
  const trace::Trace t = small_department_trace();
  const trace::QuarantineReplayReport expected =
      trace::replay_quarantine(t, replay_config());

  const ServeSummary summary = run_on_trace(t, 3);

  // Same detectors, same failure oracle, same end time: the serve
  // report must equal the replay's overall report bit for bit.
  const quarantine::QuarantineReport& a = summary.report;
  const quarantine::QuarantineReport& b = expected.overall;
  EXPECT_EQ(a.target_hosts, b.target_hosts);
  EXPECT_EQ(a.benign_hosts, b.benign_hosts);
  EXPECT_EQ(a.detected_targets, b.detected_targets);
  EXPECT_EQ(a.detection_rate, b.detection_rate);
  EXPECT_EQ(a.mean_detection_latency, b.mean_detection_latency);
  EXPECT_EQ(a.false_positive_hosts, b.false_positive_hosts);
  EXPECT_EQ(a.false_positive_rate, b.false_positive_rate);
  EXPECT_EQ(a.benign_quarantine_time, b.benign_quarantine_time);
  EXPECT_EQ(a.mean_benign_quarantine_time, b.mean_benign_quarantine_time);
  EXPECT_EQ(a.target_quarantine_time, b.target_quarantine_time);
  EXPECT_EQ(a.quarantine_events, b.quarantine_events);

  EXPECT_EQ(summary.end_time, t.duration());
  EXPECT_EQ(summary.flows_ingested, summary.flows_decided);
  EXPECT_GT(summary.flows_ingested, 0u);
  EXPECT_FALSE(summary.interrupted);
  EXPECT_GT(summary.report.detected_targets, 0.0);  // quarantines fired
}

TEST(ServeServer, DecisionStreamByteIdenticalAcrossShardCounts) {
  const trace::Trace t = small_department_trace();
  std::vector<std::string> streams;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    std::ostringstream decisions;
    const ServeSummary summary = run_on_trace(t, shards, &decisions);
    EXPECT_EQ(summary.flows_decided, summary.flows_ingested);
    streams.push_back(decisions.str());
  }
  ASSERT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);
  EXPECT_EQ(streams[0], streams[3]);

  // One decision line per flow plus the trailing summary line.
  std::size_t lines = 0;
  for (const char c : streams[0]) lines += c == '\n' ? 1 : 0;
  std::istringstream check(streams[0]);
  std::string first_line;
  ASSERT_TRUE(std::getline(check, first_line));
  EXPECT_EQ(first_line.rfind("{\"seq\":1,", 0), 0u);
  EXPECT_NE(streams[0].find("\"summary\""), std::string::npos);
  const ServeSummary reference = run_on_trace(t, 1);
  EXPECT_EQ(lines, reference.flows_ingested + 1);
}

TEST(ServeServer, StopMidStreamEqualsUninterruptedPrefixRun) {
  reset_stop();
  SyntheticConfig synth;
  synth.flows = 50'000;
  synth.hosts = 512;
  synth.worm_fraction = 0.05;
  constexpr std::uint64_t kPrefix = 20'000;

  ServeOptions options;
  options.shards = 4;
  options.num_hosts = synth.hosts;
  options.quarantine = replay_config();
  options.stop_after_flows = kPrefix;

  std::ostringstream interrupted_out;
  ServeServer interrupted_server(options);
  SyntheticFlowSource interrupted_source(synth);
  const ServeSummary interrupted =
      interrupted_server.run(interrupted_source, &interrupted_out, nullptr);
  reset_stop();

  ASSERT_TRUE(interrupted.interrupted);
  ASSERT_EQ(interrupted.flows_ingested, kPrefix);
  EXPECT_EQ(interrupted.flows_decided, kPrefix);  // drained, not dropped

  // The same stream truncated at the prefix, run to natural exhaustion.
  synth.flows = kPrefix;
  options.stop_after_flows = 0;
  std::ostringstream prefix_out;
  ServeServer prefix_server(options);
  SyntheticFlowSource prefix_source(synth);
  const ServeSummary prefix =
      prefix_server.run(prefix_source, &prefix_out, nullptr);

  EXPECT_FALSE(prefix.interrupted);
  EXPECT_EQ(interrupted.report.detected_targets,
            prefix.report.detected_targets);
  EXPECT_EQ(interrupted.report.false_positive_hosts,
            prefix.report.false_positive_hosts);
  EXPECT_EQ(interrupted.report.quarantine_events,
            prefix.report.quarantine_events);
  EXPECT_EQ(interrupted.report.benign_quarantine_time,
            prefix.report.benign_quarantine_time);
  EXPECT_EQ(interrupted.end_time, prefix.end_time);

  // Decision lines are identical; only the summary line may differ
  // (interrupted flag).
  const std::string a = interrupted_out.str();
  const std::string b = prefix_out.str();
  const std::size_t a_cut = a.rfind('\n', a.size() - 2);
  const std::size_t b_cut = b.rfind('\n', b.size() - 2);
  ASSERT_NE(a_cut, std::string::npos);
  EXPECT_EQ(a.substr(0, a_cut), b.substr(0, b_cut));
  EXPECT_NE(a.find("\"interrupted\":true"), std::string::npos);
  EXPECT_NE(b.find("\"interrupted\":false"), std::string::npos);
}

TEST(ServeServer, LatencyHistogramIsWallClockOnly) {
  const trace::Trace t = small_department_trace();
  ServeOptions options;
  options.shards = 2;
  options.num_hosts = static_cast<std::uint32_t>(t.num_hosts());
  options.quarantine = replay_config();
  ServeServer server(options);
  TraceFlowSource source(t);
  const ServeSummary summary = server.run(source, nullptr, nullptr);

  // Every decided flow records exactly one latency sample.
  const campaign::JsonValue full = server.metrics().snapshot(false);
  const campaign::JsonValue& hist =
      full.at("histograms").at("serve.decision_latency_ns");
  EXPECT_EQ(hist.at("count").as_uint(), summary.flows_decided);

  // Percentiles are bucket upper bounds: p50 <= p90 <= p99, all 2^k-1.
  EXPECT_LE(summary.latency_p50_ns, summary.latency_p90_ns);
  EXPECT_LE(summary.latency_p90_ns, summary.latency_p99_ns);
  EXPECT_GT(summary.latency_p99_ns, 0u);

  // Wall-clock telemetry is excluded from deterministic snapshots and
  // from the summary JSON, so cached artifacts stay byte-stable.
  const std::string det = server.metrics().snapshot(true).dump();
  EXPECT_EQ(det.find("decision_latency"), std::string::npos);
  EXPECT_EQ(det.find("flows_per_sec"), std::string::npos);
  EXPECT_NE(det.find("serve.flows_ingested"), std::string::npos);
  const std::string summary_json = summary.to_json().dump();
  EXPECT_EQ(summary_json.find("latency_p"), std::string::npos);
  EXPECT_EQ(summary_json.find("flows_per_sec"), std::string::npos);
  EXPECT_EQ(summary_json.find("wall"), std::string::npos);
}

TEST(ServeServer, EmptyStreamYieldsZeroReportAndSummaryLine) {
  std::istringstream in("");
  NdjsonFlowSource source(in, 64);
  ServeOptions options;
  options.shards = 2;
  options.num_hosts = 64;
  options.quarantine = replay_config();
  ServeServer server(options);
  std::ostringstream decisions;
  const ServeSummary summary = server.run(source, &decisions, nullptr);

  EXPECT_EQ(summary.flows_ingested, 0u);
  EXPECT_EQ(summary.flows_decided, 0u);
  EXPECT_EQ(summary.report.target_hosts, 0u);
  EXPECT_EQ(summary.report.benign_hosts, 64u);
  EXPECT_EQ(summary.report.false_positive_hosts, 0.0);
  EXPECT_FALSE(summary.interrupted);
  const std::string out = decisions.str();
  EXPECT_EQ(out.rfind("{\"summary\":", 0), 0u);  // only the summary line
  EXPECT_EQ(out.back(), '\n');
}

TEST(ServeServer, GarbageInputCountedInSummaryAndMetric) {
  std::istringstream in(
      "garbage\n"
      "{\"t\":1,\"host\":2,\"dest\":9}\n"
      "{\"t\":0.5,\"host\":3,\"dest\":9}\n"  // time regression: clamped
      "also not json\n"
      "{\"t\":2,\"host\":4,\"dest\":9}\n");
  NdjsonFlowSource source(in, 16);
  ServeOptions options;
  options.num_hosts = 16;
  options.quarantine = replay_config();
  ServeServer server(options);
  std::ostringstream decisions;
  const ServeSummary summary = server.run(source, &decisions, nullptr);

  EXPECT_EQ(summary.flows_ingested, 3u);
  EXPECT_EQ(summary.parse_errors, 2u);
  EXPECT_EQ(summary.time_regressions, 1u);
  const campaign::JsonValue snap = server.metrics().snapshot(true);
  EXPECT_EQ(snap.at("counters").at("serve.parse_errors").as_uint(), 2u);
  EXPECT_EQ(snap.at("counters").at("serve.time_regressions").as_uint(), 1u);
  // The regressed flow is clamped to the running maximum, t=1.
  EXPECT_NE(decisions.str().find("{\"seq\":2,\"t\":1,\"host\":3"),
            std::string::npos);
}

TEST(ServeServer, MetricsStreamEmitsPeriodicSnapshots) {
  SyntheticConfig synth;
  synth.flows = 1000;
  synth.hosts = 64;
  ServeOptions options;
  options.shards = 2;
  options.num_hosts = synth.hosts;
  options.quarantine = replay_config();
  options.metrics_interval_flows = 250;
  ServeServer server(options);
  SyntheticFlowSource source(synth);
  std::ostringstream metrics;
  server.run(source, nullptr, &metrics);

  // 4 periodic snapshots plus the final one, each one JSON line.
  std::istringstream lines(metrics.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    const campaign::JsonValue v = campaign::JsonValue::parse(line);
    EXPECT_NE(v.at("counters").find("serve.flows_ingested"), nullptr);
  }
  EXPECT_EQ(n, 5u);
}

TEST(ServeServer, ValidatesOptions) {
  ServeOptions bad_shards;
  bad_shards.shards = 0;
  bad_shards.quarantine = replay_config();
  EXPECT_THROW(ServeServer{bad_shards}, std::invalid_argument);

  ServeOptions bad_hosts;
  bad_hosts.num_hosts = 0;
  bad_hosts.quarantine = replay_config();
  EXPECT_THROW(ServeServer{bad_hosts}, std::invalid_argument);

  ServeOptions bad_config;  // default QuarantineConfig window is fine,
  bad_config.quarantine.detector.window = -1.0;  // this is not
  EXPECT_THROW(ServeServer{bad_config}, std::invalid_argument);

  ServeOptions ok;
  ok.num_hosts = 8;
  ok.quarantine = replay_config();
  ServeServer server(ok);
  std::istringstream empty("");
  NdjsonFlowSource source(empty, 8);
  server.run(source, nullptr, nullptr);
  NdjsonFlowSource again(empty, 8);
  EXPECT_THROW(server.run(again, nullptr, nullptr), std::logic_error);
}

}  // namespace
}  // namespace dq::serve
