#include "serve/source.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "trace/department.hpp"

namespace dq::serve {
namespace {

std::vector<Flow> drain(FlowSource& source) {
  std::vector<Flow> flows;
  Flow f;
  while (source.next(f)) flows.push_back(f);
  return flows;
}

TEST(NdjsonFlowSource, ParsesWellFormedLines) {
  std::istringstream in(
      "{\"t\":1.5,\"host\":3,\"dest\":991,\"failed\":true,\"worm\":true}\n"
      "{\"t\":2,\"host\":0,\"dest\":12}\n");
  NdjsonFlowSource source(in, 16);
  const std::vector<Flow> flows = drain(source);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_DOUBLE_EQ(flows[0].time, 1.5);
  EXPECT_EQ(flows[0].host, 3u);
  EXPECT_EQ(flows[0].dest, 991u);
  EXPECT_TRUE(flows[0].failed);
  EXPECT_TRUE(flows[0].labeled_worm);
  EXPECT_FALSE(flows[1].failed);
  EXPECT_FALSE(flows[1].labeled_worm);
  EXPECT_EQ(source.parse_errors(), 0u);
}

TEST(NdjsonFlowSource, EmptyStreamYieldsNothing) {
  std::istringstream in("");
  NdjsonFlowSource source(in, 16);
  EXPECT_TRUE(drain(source).empty());
  EXPECT_EQ(source.parse_errors(), 0u);
}

TEST(NdjsonFlowSource, GarbageIsCountedAndSkippedNeverFatal) {
  std::istringstream in(
      "not json at all\n"
      "\x01\x02\xff\xfe binary garbage\n"
      "{\"t\":1,\"host\":1,\"dest\":5}\n"
      "{\"t\":2,\"host\":\n"                       // truncated mid-object
      "{\"t\":3,\"dest\":5}\n"                     // missing host
      "{\"t\":-1,\"host\":1,\"dest\":5}\n"         // negative time
      "{\"t\":\"x\",\"host\":1,\"dest\":5}\n"      // wrong type
      "{\"t\":4,\"host\":99,\"dest\":5}\n"         // host out of range
      "[1,2,3]\n"                                  // not an object
      "{\"t\":5,\"host\":2,\"dest\":6,\"failed\":false}\n"
      "{\"t\":6,\"host\":2,\"dest\":7,\"failed\"");  // truncated last line
  NdjsonFlowSource source(in, 16);
  const std::vector<Flow> flows = drain(source);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].host, 1u);
  EXPECT_EQ(flows[1].host, 2u);
  EXPECT_EQ(source.parse_errors(), 9u);
}

TEST(NdjsonFlowSource, BlankAndCrlfLinesAreTolerated) {
  std::istringstream in(
      "\r\n"
      "\n"
      "{\"t\":1,\"host\":0,\"dest\":5}\r\n");
  NdjsonFlowSource source(in, 4);
  EXPECT_EQ(drain(source).size(), 1u);
  EXPECT_EQ(source.parse_errors(), 0u);
}

TEST(TraceFlowSource, FailureBitsMatchFirstContactOracle) {
  // Host 0: dns answer then outbound to the resolved ip (not failed),
  // outbound to a cold ip (failed), inbound then reply (not failed).
  trace::Trace t;
  t.add({0.0, trace::EventType::kDnsAnswer, 0, 100, 60.0});
  t.add({1.0, trace::EventType::kOutboundContact, 0, 100, 0.0});
  t.add({2.0, trace::EventType::kOutboundContact, 0, 200, 0.0});
  t.add({3.0, trace::EventType::kInboundContact, 0, 300, 0.0});
  t.add({4.0, trace::EventType::kOutboundContact, 0, 300, 0.0});
  // Host 1 (worm category): blind scan.
  t.add({5.0, trace::EventType::kOutboundContact, 1, 400, 0.0});
  t.finalize();
  t.set_host_categories({trace::HostCategory::kNormalClient,
                         trace::HostCategory::kWormBlaster});

  TraceFlowSource source(t);
  EXPECT_LT(source.end_time_hint(), 0.0);  // not exhausted yet
  const std::vector<Flow> flows = drain(source);
  ASSERT_EQ(flows.size(), 4u);  // only outbound contacts become flows
  EXPECT_FALSE(flows[0].failed);
  EXPECT_TRUE(flows[1].failed);
  EXPECT_FALSE(flows[2].failed);
  EXPECT_TRUE(flows[3].failed);
  EXPECT_FALSE(flows[0].labeled_worm);
  EXPECT_TRUE(flows[3].labeled_worm);
  EXPECT_DOUBLE_EQ(source.end_time_hint(), t.duration());
}

TEST(TraceFlowSource, PacingDoesNotChangeContent) {
  trace::DepartmentConfig config;
  config.normal_clients = 10;
  config.servers = 1;
  config.p2p_clients = 1;
  config.blaster_hosts = 1;
  config.welchia_hosts = 1;
  config.duration = 60.0;
  const trace::Trace t = trace::generate_department_trace(config, 7);

  TraceFlowSource fast(t, 0.0);
  TraceFlowSource paced(t, 1e7);  // ~6 microseconds of pacing total
  const std::vector<Flow> a = drain(fast);
  const std::vector<Flow> b = drain(paced);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].host, b[i].host);
    EXPECT_EQ(a[i].dest, b[i].dest);
    EXPECT_EQ(a[i].failed, b[i].failed);
  }
}

TEST(SyntheticFlowSource, DeterministicAndSeedSensitive) {
  SyntheticConfig config;
  config.flows = 1000;
  config.hosts = 64;
  SyntheticFlowSource a(config), b(config);
  const std::vector<Flow> fa = drain(a), fb = drain(b);
  ASSERT_EQ(fa.size(), 1000u);
  ASSERT_EQ(fb.size(), 1000u);
  bool identical = true, any_failed = false, any_worm = false;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    identical = identical && fa[i].host == fb[i].host &&
                fa[i].dest == fb[i].dest && fa[i].failed == fb[i].failed &&
                fa[i].time == fb[i].time;
    any_failed = any_failed || fa[i].failed;
    any_worm = any_worm || fa[i].labeled_worm;
    EXPECT_LT(fa[i].host, config.hosts);
  }
  EXPECT_TRUE(identical);
  EXPECT_TRUE(any_failed);

  config.seed = 43;
  SyntheticFlowSource c(config);
  const std::vector<Flow> fc = drain(c);
  bool differs = false;
  for (std::size_t i = 0; i < fc.size(); ++i)
    differs = differs || fc[i].host != fa[i].host || fc[i].dest != fa[i].dest;
  EXPECT_TRUE(differs);
}

TEST(SyntheticFlowSource, WormHostsScanWideAndFailOften) {
  SyntheticConfig config;
  config.flows = 20000;
  config.hosts = 100;
  config.worm_fraction = 0.1;  // hosts 0..9 are scanners
  SyntheticFlowSource source(config);
  std::uint64_t worm_flows = 0, worm_failed = 0;
  std::uint64_t benign_flows = 0, benign_failed = 0;
  Flow f;
  while (source.next(f)) {
    if (f.labeled_worm) {
      EXPECT_LT(f.host, 10u);
      ++worm_flows;
      worm_failed += f.failed ? 1 : 0;
    } else {
      ++benign_flows;
      benign_failed += f.failed ? 1 : 0;
    }
  }
  ASSERT_GT(worm_flows, 0u);
  ASSERT_GT(benign_flows, 0u);
  EXPECT_GT(static_cast<double>(worm_failed) / worm_flows, 0.8);
  EXPECT_LT(static_cast<double>(benign_failed) / benign_flows, 0.1);
}

}  // namespace
}  // namespace dq::serve
