#include "serve/spsc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace dq::serve {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscQueue<int>(1024).capacity(), 1024u);
}

TEST(SpscQueue, FifoOrderAndFullEmpty) {
  SpscQueue<int> q(4);
  int out = 0;
  EXPECT_FALSE(q.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
}

TEST(SpscQueue, WrapAroundKeepsOrder) {
  SpscQueue<int> q(4);
  int out = 0;
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    while (q.try_push(next_push)) ++next_push;
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, next_pop++);
  }
}

TEST(SpscQueue, PopBatchDrainsInOrder) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.try_push(i));
  int batch[4];
  ASSERT_EQ(q.pop_batch(batch, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(batch[i], i);
  ASSERT_EQ(q.pop_batch(batch, 4), 2u);
  EXPECT_EQ(batch[0], 4);
  EXPECT_EQ(batch[1], 5);
  EXPECT_EQ(q.pop_batch(batch, 4), 0u);
}

TEST(SpscQueue, CloseSignalsEndOfStream) {
  SpscQueue<int> q(4);
  EXPECT_FALSE(q.closed());
  ASSERT_TRUE(q.try_push(7));
  q.close();
  EXPECT_TRUE(q.closed());
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));  // drain after close
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, TwoThreadTransferIsLossless) {
  constexpr std::uint64_t kCount = 200'000;
  SpscQueue<std::uint64_t> q(256);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i)
      while (!q.try_push(i)) std::this_thread::yield();
    q.close();
  });
  std::uint64_t expected = 0, sum = 0;
  std::uint64_t batch[64];
  bool ordered = true;
  while (true) {
    const std::size_t n = q.pop_batch(batch, 64);
    if (n == 0) {
      if (q.closed() && q.empty()) break;
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ordered = ordered && batch[i] == expected++;
      sum += batch[i];
    }
  }
  producer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(expected, kCount);
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

}  // namespace
}  // namespace dq::serve
