// Tests for the simulator extensions beyond the paper's core
// experiments: scan strategies, baseline responses (blacklist /
// content filter), dark-space detection, and legitimate background
// traffic with collateral-damage accounting.
#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "simulator/runner.hpp"
#include "simulator/worm_sim.hpp"

namespace dq::sim {
namespace {

SimulationConfig base_config() {
  SimulationConfig cfg;
  cfg.worm.contact_rate = 0.8;
  cfg.worm.initial_infected = 2;
  cfg.max_ticks = 80.0;
  cfg.seed = 13;
  return cfg;
}

const Network& powerlaw() {
  static const Network net = [] {
    Rng rng(17);
    return Network(graph::make_barabasi_albert(300, 2, rng));
  }();
  return net;
}

// ---- scan strategies ----

class StrategySweep : public ::testing::TestWithParam<TargetSelection> {};

// Hitlist scanners walk their whole list before falling back to random
// scanning, so each new infectee sits out ~hitlist_size/β ticks; give
// those runs a longer horizon (saturating runs stop early anyway).
TEST_P(StrategySweep, EveryStrategySaturatesUnthrottled) {
  SimulationConfig cfg = base_config();
  cfg.worm.selection = GetParam();
  if (GetParam() == TargetSelection::kHitlist) cfg.max_ticks = 600.0;
  WormSimulation sim(powerlaw(), cfg);
  const RunResult result = sim.run();
  EXPECT_DOUBLE_EQ(result.ever_infected.back_value(), 1.0);
}

TEST_P(StrategySweep, BackboneRlSlowsEveryStrategy) {
  SimulationConfig cfg = base_config();
  cfg.worm.selection = GetParam();
  if (GetParam() == TargetSelection::kHitlist) {
    cfg.max_ticks = 600.0;
    // A long list-walk phase dominates spread time and would mask the
    // rate limiter's relative slowdown; keep the list short here.
    cfg.worm.hitlist_size = 20;
  }
  const double t_base =
      WormSimulation(powerlaw(), cfg).run().ever_infected.time_to_reach(0.5);
  cfg.deployment.backbone_limited = true;
  cfg.max_ticks = 1200.0;
  const double t_rl =
      WormSimulation(powerlaw(), cfg).run().ever_infected.time_to_reach(0.5);
  ASSERT_GT(t_base, 0.0);
  // Either much slower or never reaches 50% at all.
  if (t_rl > 0.0) {
    EXPECT_GT(t_rl, 1.5 * t_base);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, StrategySweep,
    ::testing::Values(TargetSelection::kRandom, TargetSelection::kSequential,
                      TargetSelection::kPermutation,
                      TargetSelection::kHitlist));

TEST(ScanStrategies, PermutationBeatsRandomToFullCoverage) {
  // Permutation scanning avoids duplicate probing, so reaching ~100%
  // takes no longer (usually less) than random scanning.
  SimulationConfig cfg = base_config();
  cfg.worm.selection = TargetSelection::kRandom;
  const double t_random = sim::run_many(powerlaw(), cfg, 5)
                              .ever_infected.time_to_reach(0.99);
  cfg.worm.selection = TargetSelection::kPermutation;
  const double t_perm = sim::run_many(powerlaw(), cfg, 5)
                            .ever_infected.time_to_reach(0.99);
  ASSERT_GT(t_random, 0.0);
  ASSERT_GT(t_perm, 0.0);
  EXPECT_LE(t_perm, t_random * 1.1);
}

TEST(ScanStrategies, HitlistTakeoffNoSlowerThanRandom) {
  // In this simulator every address maps to a live node, so random
  // scanning wastes almost nothing early and the hitlist's advantage
  // (skipping dead address space) is structurally absent; the list
  // must still never hurt. (Against a sparse address space the
  // acceleration would appear — see DESIGN.md's substitution notes.)
  SimulationConfig cfg = base_config();
  cfg.worm.initial_infected = 1;
  cfg.worm.selection = TargetSelection::kRandom;
  const double r10 =
      run_many(powerlaw(), cfg, 6).ever_infected.time_to_reach(0.1);
  cfg.worm.selection = TargetSelection::kHitlist;
  cfg.worm.hitlist_size = 150;
  const double h10 =
      run_many(powerlaw(), cfg, 6).ever_infected.time_to_reach(0.1);
  ASSERT_GT(r10, 0.0);
  ASSERT_GT(h10, 0.0);
  EXPECT_LE(h10, r10 * 1.15);
}

// ---- responses ----

TEST(Responses, Validation) {
  SimulationConfig cfg = base_config();
  cfg.response.kind = ResponseConfig::Kind::kBlacklist;
  cfg.response.reaction_time = -1.0;
  EXPECT_THROW(WormSimulation(powerlaw(), cfg), std::invalid_argument);
}

TEST(Responses, ContentFilterEverywhereStopsTheWorm) {
  SimulationConfig cfg = base_config();
  cfg.response.kind = ResponseConfig::Kind::kContentFilter;
  cfg.response.reaction_time = 3.0;
  cfg.response.filters_everywhere = true;
  const RunResult result = WormSimulation(powerlaw(), cfg).run();
  // After tick 3 no worm packet survives any hop: the outbreak freezes
  // at whatever it reached in the first ticks.
  EXPECT_LT(result.ever_infected.back_value(), 0.2);
  EXPECT_GT(result.worm_packets_dropped, 0u);
}

TEST(Responses, ContentFilterFasterReactionContainsMore) {
  auto final_with_reaction = [&](double reaction) {
    SimulationConfig cfg = base_config();
    cfg.response.kind = ResponseConfig::Kind::kContentFilter;
    cfg.response.reaction_time = reaction;
    cfg.response.filters_everywhere = true;
    return run_many(powerlaw(), cfg, 4).ever_infected.back_value();
  };
  EXPECT_LE(final_with_reaction(2.0), final_with_reaction(8.0));
  EXPECT_LE(final_with_reaction(8.0), final_with_reaction(14.0) + 1e-9);
}

TEST(Responses, BlacklistSlowsButLeaksThroughFreshInfections) {
  SimulationConfig cfg = base_config();
  cfg.max_ticks = 60.0;
  const double base_final =
      WormSimulation(powerlaw(), cfg).run().ever_infected.back_value();
  cfg.response.kind = ResponseConfig::Kind::kBlacklist;
  cfg.response.reaction_time = 3.0;
  cfg.response.filters_everywhere = true;
  const RunResult blacklisted = WormSimulation(powerlaw(), cfg).run();
  // Each infected host gets a 3-tick scanning window before its
  // sources are cut off; the worm is slowed but new hosts keep the
  // chain alive — blacklisting is weaker than content filtering.
  EXPECT_LT(blacklisted.ever_infected.interpolate(20.0), base_final);
  EXPECT_GT(blacklisted.worm_packets_dropped, 0u);
}

TEST(Responses, ContentFilterBeatsBlacklistAtEqualReaction) {
  auto final_of = [&](ResponseConfig::Kind kind) {
    SimulationConfig cfg = base_config();
    cfg.response.kind = kind;
    cfg.response.reaction_time = 4.0;
    cfg.response.filters_everywhere = true;
    return run_many(powerlaw(), cfg, 4).ever_infected.back_value();
  };
  // Moore et al.'s finding, reproduced: content filtering contains
  // far more than address blacklisting at the same reaction time.
  EXPECT_LT(final_of(ResponseConfig::Kind::kContentFilter),
            final_of(ResponseConfig::Kind::kBlacklist));
}

TEST(Responses, BackboneOnlyFiltersAreWeakerThanEverywhere) {
  auto final_of = [&](bool everywhere) {
    SimulationConfig cfg = base_config();
    cfg.response.kind = ResponseConfig::Kind::kContentFilter;
    cfg.response.reaction_time = 3.0;
    cfg.response.filters_everywhere = everywhere;
    return run_many(powerlaw(), cfg, 4).ever_infected.back_value();
  };
  EXPECT_LE(final_of(true), final_of(false));
}

// ---- detection ----

TEST(Detector, Validation) {
  SimulationConfig cfg = base_config();
  cfg.detector.enabled = true;
  cfg.detector.observe_probability = 0.0;
  EXPECT_THROW(WormSimulation(powerlaw(), cfg), std::invalid_argument);
  cfg.detector.observe_probability = 0.1;
  cfg.detector.threshold = 0;
  EXPECT_THROW(WormSimulation(powerlaw(), cfg), std::invalid_argument);
  cfg = base_config();
  cfg.immunization.enabled = true;
  cfg.immunization.start_on_detection = true;  // detector off
  EXPECT_THROW(WormSimulation(powerlaw(), cfg), std::invalid_argument);
}

TEST(Detector, FiresOnceEnoughScansAreSeen) {
  SimulationConfig cfg = base_config();
  cfg.detector.enabled = true;
  cfg.detector.observe_probability = 0.05;
  cfg.detector.threshold = 20;
  const RunResult result = WormSimulation(powerlaw(), cfg).run();
  EXPECT_GE(result.detection_tick, 0.0);
  // 20 sightings at 5% of scans needs ~400 scans — well before
  // saturation but not instantly.
  EXPECT_GT(result.detection_tick, 1.0);
}

TEST(Detector, BiggerDarkSpaceDetectsSooner) {
  auto detection_tick = [&](double observe) {
    SimulationConfig cfg = base_config();
    cfg.detector.enabled = true;
    cfg.detector.observe_probability = observe;
    cfg.detector.threshold = 20;
    return WormSimulation(powerlaw(), cfg).run().detection_tick;
  };
  const double small = detection_tick(0.01);
  const double large = detection_tick(0.2);
  ASSERT_GE(small, 0.0);
  ASSERT_GE(large, 0.0);
  EXPECT_LE(large, small);
}

TEST(Detector, DrivesImmunization) {
  SimulationConfig cfg = base_config();
  cfg.detector.enabled = true;
  cfg.detector.observe_probability = 0.1;
  cfg.detector.threshold = 10;
  cfg.immunization.enabled = true;
  cfg.immunization.start_on_detection = true;
  cfg.immunization.rate = 0.15;
  const RunResult result = WormSimulation(powerlaw(), cfg).run();
  ASSERT_GE(result.detection_tick, 0.0);
  ASSERT_GE(result.immunization_start_tick, 0.0);
  EXPECT_GE(result.immunization_start_tick, result.detection_tick);
  // Early detection-driven patching contains the outbreak well below
  // full saturation.
  EXPECT_LT(result.ever_infected.back_value(), 0.9);
}

// ---- stochastic extinction (SIR recovery mode) ----

TEST(Extinction, SirModeLeavesSusceptiblesUnpatched) {
  SimulationConfig cfg = base_config();
  cfg.immunization.enabled = true;
  cfg.immunization.rate = 0.3;
  cfg.immunization.start_at_tick = 0.0;
  cfg.immunization.patch_susceptibles = false;
  cfg.max_ticks = 200.0;
  const RunResult result = WormSimulation(powerlaw(), cfg).run();
  // Only ever-infected hosts can be removed.
  EXPECT_LE(result.removed.back_value(),
            result.ever_infected.back_value() + 1e-9);
}

TEST(Extinction, FrequencyTracksBranchingTheory) {
  // β = 0.8, μ = 0.2: offspring pgf μ/(1−(1−μ)e^{β(q−1)}) has fixed
  // point q ≈ 0.394 (see bench/ablation_extinction.cpp).
  std::size_t extinct = 0;
  const std::size_t trials = 120;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    SimulationConfig cfg = base_config();
    cfg.worm.initial_infected = 1;
    cfg.immunization.enabled = true;
    cfg.immunization.rate = 0.2;
    cfg.immunization.start_at_tick = 0.0;
    cfg.immunization.patch_susceptibles = false;
    cfg.max_ticks = 120.0;
    cfg.seed = 1000 + trial;
    const RunResult result = WormSimulation(powerlaw(), cfg).run();
    if (result.ever_infected.back_value() < 0.10) ++extinct;
  }
  const double q =
      static_cast<double>(extinct) / static_cast<double>(trials);
  EXPECT_NEAR(q, 0.394, 0.12);
}

TEST(Extinction, SubcriticalAlwaysDies) {
  // R0 = β(1−μ)/μ = 0.8·0.5/0.5 < 1: every outbreak fizzles.
  std::size_t extinct = 0;
  for (std::size_t trial = 0; trial < 30; ++trial) {
    SimulationConfig cfg = base_config();
    cfg.worm.initial_infected = 1;
    cfg.immunization.enabled = true;
    cfg.immunization.rate = 0.5;
    cfg.immunization.start_at_tick = 0.0;
    cfg.immunization.patch_susceptibles = false;
    cfg.max_ticks = 200.0;
    cfg.seed = 2000 + trial;
    const RunResult result = WormSimulation(powerlaw(), cfg).run();
    if (result.ever_infected.back_value() < 0.10) ++extinct;
  }
  EXPECT_EQ(extinct, 30u);
}

// ---- legitimate traffic ----

TEST(LegitTraffic, DeliveredCleanlyWithoutLimiting) {
  SimulationConfig cfg = base_config();
  cfg.legit.rate_per_node = 0.5;
  cfg.max_ticks = 20.0;
  const RunResult result = WormSimulation(powerlaw(), cfg).run();
  EXPECT_GT(result.legit_sent, 1000u);
  EXPECT_EQ(result.legit_sent, result.legit_delivered);
  EXPECT_DOUBLE_EQ(result.mean_legit_delay, 0.0);
  EXPECT_EQ(result.legit_dropped, 0u);
}

TEST(LegitTraffic, QueuedBehindWormUnderTightLimits) {
  SimulationConfig cfg = base_config();
  cfg.legit.rate_per_node = 0.2;
  cfg.deployment.backbone_limited = true;
  cfg.deployment.weight_by_routing_load = false;
  cfg.deployment.base_link_capacity = 0.5;
  cfg.deployment.min_link_capacity = 0.5;
  cfg.max_ticks = 40.0;
  const RunResult result = WormSimulation(powerlaw(), cfg).run();
  // Some legitimate packets must have waited in rate-limit queues.
  EXPECT_GT(result.mean_legit_delay, 0.0);
  EXPECT_GT(result.max_legit_delay, 0.0);
}

TEST(LegitTraffic, BlacklistCollateralHitsInfectedHostsTraffic) {
  SimulationConfig cfg = base_config();
  cfg.legit.rate_per_node = 0.3;
  cfg.response.kind = ResponseConfig::Kind::kBlacklist;
  cfg.response.reaction_time = 2.0;
  cfg.response.filters_everywhere = true;
  cfg.max_ticks = 40.0;
  const RunResult result = WormSimulation(powerlaw(), cfg).run();
  // Blacklisted (infected) hosts lose their legitimate traffic too.
  EXPECT_GT(result.legit_dropped, 0u);
}

TEST(LegitTraffic, RateLimitingDropsNothingLegit) {
  // The paper's argument for rate control over blacklisting: limits
  // delay traffic but never destroy it.
  SimulationConfig cfg = base_config();
  cfg.legit.rate_per_node = 0.2;
  cfg.deployment.backbone_limited = true;
  cfg.max_ticks = 40.0;
  const RunResult result = WormSimulation(powerlaw(), cfg).run();
  EXPECT_EQ(result.legit_dropped, 0u);
}

}  // namespace
}  // namespace dq::sim
