// Golden-trajectory fixtures: four fixed-seed single runs serialized
// as canonical JSON under tests/data/golden/, byte-compared against a
// fresh simulation. Any behavioural change in the tick loop — event
// ordering, RNG draw order, a new counter — shows up as a fixture
// diff here before it shows up as a silently shifted figure.
//
// Regenerating after an INTENDED behaviour change:
//
//   ./build/tests/dq_golden_test --update-golden
//
// rewrites every fixture in place (the source tree's tests/data/golden,
// baked in via DQ_GOLDEN_DIR); commit the diff alongside the change
// that caused it, and say in the commit message why the trajectories
// moved. A missing fixture fails the test rather than auto-creating,
// so CI can never mint its own baseline.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "campaign/job.hpp"
#include "campaign/result_io.hpp"
#include "simulator/sharded_sim.hpp"
#include "simulator/worm_sim.hpp"

namespace dq::sim {
namespace {

bool g_update_golden = false;

std::filesystem::path golden_dir() { return DQ_GOLDEN_DIR; }

std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void check_golden(const std::string& name,
                  const campaign::TopologySpec& topology,
                  const SimulationConfig& config) {
  const Network net = campaign::build_network(topology);
  WormSimulation sim(net, config);
  const RunResult result = sim.run();
  const std::string fresh =
      campaign::run_result_to_json(result).dump() + "\n";

  const std::filesystem::path path = golden_dir() / (name + ".json");
  if (g_update_golden) {
    std::filesystem::create_directories(golden_dir());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << fresh;
    SUCCEED() << "updated " << path;
    return;
  }

  const std::optional<std::string> golden = read_file(path);
  ASSERT_TRUE(golden.has_value())
      << path << " is missing — run dq_golden_test --update-golden and "
      << "commit the fixture";
  EXPECT_EQ(fresh, *golden)
      << name << " trajectory diverged from its fixture. If the "
      << "behaviour change is intended, regenerate with "
      << "dq_golden_test --update-golden and commit the diff.";
}

/// Sharded-engine fixtures additionally pin the engine's shard-count
/// invariance: the run is executed at 1 shard and at 3 shards, the two
/// serializations must be byte-equal, and the 1-shard bytes are then
/// compared against the committed fixture.
void check_sharded_golden(const std::string& name,
                          const campaign::TopologySpec& topology,
                          const SimulationConfig& config) {
  const Network net = campaign::build_network(topology);
  const RunResult one = ShardedSimulation(net, config, 1).run();
  const RunResult three = ShardedSimulation(net, config, 3).run();
  const std::string fresh =
      campaign::run_result_to_json(one).dump() + "\n";
  const std::string resharded =
      campaign::run_result_to_json(three).dump() + "\n";
  ASSERT_EQ(fresh, resharded)
      << name << ": 1-shard and 3-shard trajectories differ — the "
      << "sharded engine's determinism contract is broken.";

  const std::filesystem::path path = golden_dir() / (name + ".json");
  if (g_update_golden) {
    std::filesystem::create_directories(golden_dir());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << fresh;
    SUCCEED() << "updated " << path;
    return;
  }

  const std::optional<std::string> golden = read_file(path);
  ASSERT_TRUE(golden.has_value())
      << path << " is missing — run dq_golden_test --update-golden and "
      << "commit the fixture";
  EXPECT_EQ(fresh, *golden)
      << name << " trajectory diverged from its fixture. If the "
      << "behaviour change is intended, regenerate with "
      << "dq_golden_test --update-golden and commit the diff.";
}

TEST(Golden, StarNoRateLimiting) {
  campaign::TopologySpec topo;
  topo.kind = campaign::TopologySpec::Kind::kStar;
  topo.nodes = 200;
  topo.backbone_fraction = 1.0 / 200.0;
  topo.edge_fraction = 0.0;
  SimulationConfig cfg;
  cfg.worm.contact_rate = 0.8;
  cfg.worm.filtered_contact_rate = 0.01;
  cfg.worm.initial_infected = 1;
  cfg.max_ticks = 50.0;
  cfg.seed = 12345;
  check_golden("star_no_rl", topo, cfg);
}

TEST(Golden, PowerLawBackboneRateLimiting) {
  campaign::TopologySpec topo;  // BA(1000, 2), top-5% backbone
  topo.build_seed = 99;
  SimulationConfig cfg;
  cfg.worm.contact_rate = 0.8;
  cfg.worm.filtered_contact_rate = 0.01;
  cfg.worm.initial_infected = 1;
  cfg.deployment.backbone_limited = true;
  cfg.max_ticks = 120.0;
  cfg.seed = 12345;
  check_golden("powerlaw_backbone_rl", topo, cfg);
}

TEST(Golden, QuarantineEnabled) {
  campaign::TopologySpec topo;
  topo.build_seed = 99;
  SimulationConfig cfg;
  cfg.worm.contact_rate = 0.8;
  cfg.worm.filtered_contact_rate = 0.01;
  cfg.worm.initial_infected = 5;
  cfg.worm.hit_probability = 0.1;  // sparse scans feed the detectors
  cfg.legit.rate_per_node = 0.2;
  cfg.quarantine.enabled = true;
  cfg.max_ticks = 100.0;
  cfg.seed = 12345;
  check_golden("quarantine_enabled", topo, cfg);
}

TEST(Golden, ImmunizationAtTwentyPercent) {
  campaign::TopologySpec topo;
  topo.build_seed = 99;
  SimulationConfig cfg;
  cfg.worm.contact_rate = 0.8;
  cfg.worm.filtered_contact_rate = 0.01;
  cfg.worm.initial_infected = 1;
  cfg.immunization.enabled = true;
  cfg.immunization.start_at_infected_fraction = 0.2;
  cfg.immunization.rate = 0.1;
  cfg.max_ticks = 100.0;
  cfg.seed = 12345;
  check_golden("immunization_at_20pct", topo, cfg);
}

TEST(Golden, ShardedSparse) {
  campaign::TopologySpec topo;  // BA(1000, 2)
  topo.build_seed = 99;
  SimulationConfig cfg;
  cfg.worm.contact_rate = 1.0;
  cfg.worm.initial_infected = 3;
  cfg.worm.hit_probability = 0.3;
  cfg.detector.enabled = true;
  cfg.detector.observe_probability = 0.02;
  cfg.detector.threshold = 10;
  cfg.max_ticks = 60.0;
  cfg.seed = 2026;
  check_sharded_golden("sharded_sparse", topo, cfg);
}

TEST(Golden, ShardedDense) {
  campaign::TopologySpec topo;
  topo.build_seed = 99;
  SimulationConfig cfg;
  cfg.worm.contact_rate = 0.8;
  cfg.worm.filtered_contact_rate = 0.01;
  cfg.worm.initial_infected = 1;
  cfg.deployment.host_filter_fraction = 0.3;
  cfg.max_ticks = 60.0;
  cfg.seed = 2026;
  check_sharded_golden("sharded_dense", topo, cfg);
}

TEST(Golden, ShardedSubnetLocalPreferential) {
  campaign::TopologySpec topo;
  topo.kind = campaign::TopologySpec::Kind::kSubnets;
  topo.num_subnets = 10;
  topo.hosts_per_subnet = 50;
  topo.build_seed = 99;
  SimulationConfig cfg;
  cfg.worm.contact_rate = 1.0;
  cfg.worm.selection = TargetSelection::kLocalPreferential;
  cfg.worm.local_bias = 0.7;
  cfg.worm.initial_infected = 2;
  cfg.max_ticks = 50.0;
  cfg.seed = 2026;
  check_sharded_golden("sharded_subnet", topo, cfg);
}

TEST(Golden, ShardedQuarantine) {
  campaign::TopologySpec topo;
  topo.build_seed = 99;
  SimulationConfig cfg;
  cfg.worm.contact_rate = 1.2;
  cfg.worm.initial_infected = 5;
  cfg.worm.hit_probability = 0.2;  // sparse scans feed the detectors
  cfg.quarantine.enabled = true;
  cfg.quarantine.detector.window = 4.0;
  cfg.quarantine.detector.contact_rate_threshold = 5.0;
  cfg.quarantine.policy.base_period = 20.0;
  cfg.immunization.enabled = true;
  cfg.immunization.start_at_infected_fraction = 0.3;
  cfg.immunization.rate = 0.05;
  cfg.max_ticks = 80.0;
  cfg.seed = 2026;
  check_sharded_golden("sharded_quarantine", topo, cfg);
}

}  // namespace
}  // namespace dq::sim

int main(int argc, char** argv) {
  // Filter our flag out before gtest sees the command line.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) {
      dq::sim::g_update_golden = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
