// Invariant checks: step the simulator manually through a grab bag of
// configurations and assert the state-machine invariants hold at every
// tick. Property-style: parameterized over seeds and configurations.
#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "simulator/worm_sim.hpp"

namespace dq::sim {
namespace {

struct Variant {
  const char* name;
  SimulationConfig config;
};

SimulationConfig base() {
  SimulationConfig cfg;
  cfg.worm.contact_rate = 0.8;
  cfg.worm.initial_infected = 2;
  cfg.max_ticks = 40.0;
  return cfg;
}

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"plain", base()});
  {
    SimulationConfig cfg = base();
    cfg.deployment.backbone_limited = true;
    out.push_back({"backbone-rl", cfg});
  }
  {
    SimulationConfig cfg = base();
    cfg.deployment.host_filter_fraction = 0.5;
    cfg.deployment.edge_router_limited = true;
    out.push_back({"edge+host", cfg});
  }
  {
    SimulationConfig cfg = base();
    cfg.immunization.enabled = true;
    cfg.immunization.rate = 0.15;
    cfg.immunization.start_at_tick = 5.0;
    out.push_back({"immunized", cfg});
  }
  {
    SimulationConfig cfg = base();
    cfg.worm.selection = TargetSelection::kPermutation;
    cfg.response.kind = ResponseConfig::Kind::kContentFilter;
    cfg.response.reaction_time = 4.0;
    out.push_back({"permutation+filter", cfg});
  }
  {
    SimulationConfig cfg = base();
    cfg.legit.rate_per_node = 0.3;
    cfg.response.kind = ResponseConfig::Kind::kBlacklist;
    cfg.response.reaction_time = 3.0;
    cfg.deployment.backbone_limited = true;
    out.push_back({"kitchen-sink", cfg});
  }
  return out;
}

class InvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantSweep, StateMachineInvariantsHoldEveryTick) {
  Rng rng(77);
  const Network net(graph::make_barabasi_albert(150, 2, rng));
  for (const Variant& variant : variants()) {
    SimulationConfig cfg = variant.config;
    cfg.seed = GetParam();
    WormSimulation sim(net, cfg);

    double prev_ever = 0.0;
    for (int tick = 0; tick < 40; ++tick) {
      sim.step();

      // Recount states from scratch and compare with the counters.
      std::size_t infected = 0, removed = 0;
      for (graph::NodeId v = 0; v < net.num_nodes(); ++v) {
        infected += sim.state(v) == NodeState::kInfected;
        removed += sim.state(v) == NodeState::kRemoved;
      }
      EXPECT_EQ(sim.active_infected_count(), infected) << variant.name;
      EXPECT_LE(sim.active_infected_count(), sim.ever_infected_count())
          << variant.name;
      EXPECT_LE(sim.ever_infected_count() ,
                net.num_nodes()) << variant.name;
      EXPECT_LE(infected + removed, net.num_nodes()) << variant.name;

      const double ever =
          static_cast<double>(sim.ever_infected_count()) /
          static_cast<double>(net.num_nodes());
      EXPECT_GE(ever + 1e-12, prev_ever) << variant.name;
      prev_ever = ever;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(Invariants, RunResultSeriesAreConsistent) {
  Rng rng(78);
  const Network net(graph::make_barabasi_albert(200, 2, rng));
  SimulationConfig cfg = base();
  cfg.immunization.enabled = true;
  cfg.immunization.rate = 0.1;
  cfg.immunization.start_at_infected_fraction = 0.3;
  cfg.max_ticks = 60.0;
  cfg.seed = 21;
  const RunResult result = WormSimulation(net, cfg).run();
  ASSERT_EQ(result.active_infected.size(), result.ever_infected.size());
  ASSERT_EQ(result.removed.size(), result.ever_infected.size());
  for (std::size_t i = 0; i < result.ever_infected.size(); ++i) {
    EXPECT_LE(result.active_infected.value_at(i),
              result.ever_infected.value_at(i) + 1e-12);
    EXPECT_LE(result.removed.value_at(i), 1.0 + 1e-12);
    EXPECT_LE(result.active_infected.value_at(i) +
                  result.removed.value_at(i),
              1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace dq::sim
