#include "simulator/network.hpp"

#include <gtest/gtest.h>

namespace dq::sim {
namespace {

TEST(Network, WrapsGraphWithRoles) {
  Rng rng(1);
  const Network net(graph::make_barabasi_albert(100, 2, rng));
  EXPECT_EQ(net.num_nodes(), 100u);
  EXPECT_EQ(net.roles().backbone.size(), 5u);
  EXPECT_EQ(net.roles().edge.size(), 10u);
  EXPECT_FALSE(net.has_subnets());
}

TEST(Network, LinkIndexRoundTrip) {
  const Network net(graph::make_star(5), 0.2, 0.0);
  EXPECT_EQ(net.num_links(), 4u);
  for (std::size_t l = 0; l < net.num_links(); ++l) {
    const graph::LinkKey key = net.link(l);
    EXPECT_EQ(net.link_index(key.a, key.b), l);
    EXPECT_EQ(net.link_index(key.b, key.a), l);
  }
  EXPECT_THROW(net.link_index(1, 2), std::invalid_argument);
}

TEST(Network, LinkLoadsAndMean) {
  const Network net(graph::make_star(4), 0.25, 0.0);
  // All three hub links carry load 6 (see routing tests).
  for (std::size_t l = 0; l < net.num_links(); ++l)
    EXPECT_EQ(net.link_load(l), 6u);
  EXPECT_DOUBLE_EQ(net.mean_link_load(), 6.0);
}

TEST(Network, SubnetTopologyRoles) {
  Rng rng(2);
  const Network net(graph::make_subnet_topology(3, 4, rng));
  EXPECT_TRUE(net.has_subnets());
  EXPECT_EQ(net.num_subnets(), 3u);
  EXPECT_EQ(net.roles().edge.size(), 3u);
  EXPECT_EQ(net.roles().backbone.size(), 0u);
  EXPECT_EQ(net.roles().hosts.size(), 12u);
  for (graph::NodeId gw : net.roles().edge)
    EXPECT_EQ(net.roles().role[gw], graph::NodeRole::kEdgeRouter);
}

TEST(Network, SubnetMembership) {
  Rng rng(3);
  const Network net(graph::make_subnet_topology(2, 3, rng));
  for (graph::NodeId v = 0; v < net.num_nodes(); ++v) {
    const auto subnet = net.subnet_of(v);
    ASSERT_TRUE(subnet.has_value());
    const auto& members = net.subnet_members(*subnet);
    EXPECT_NE(std::find(members.begin(), members.end(), v), members.end());
  }
}

TEST(Network, BackboneLinksOnSubnetTopologyAreGatewayInterconnect) {
  Rng rng(4);
  const Network net(graph::make_subnet_topology(3, 4, rng));
  std::size_t backbone_links = 0;
  for (std::size_t l = 0; l < net.num_links(); ++l) {
    if (net.link_is_backbone(l)) {
      ++backbone_links;
      const graph::LinkKey key = net.link(l);
      EXPECT_EQ(net.roles().role[key.a], graph::NodeRole::kEdgeRouter);
      EXPECT_EQ(net.roles().role[key.b], graph::NodeRole::kEdgeRouter);
    }
  }
  EXPECT_GE(backbone_links, 2u);  // 3 gateways interconnected
}

TEST(Network, EdgeLinksTouchEdgeRouters) {
  Rng rng(5);
  const Network net(graph::make_barabasi_albert(100, 2, rng));
  for (std::size_t l = 0; l < net.num_links(); ++l) {
    if (net.link_is_edge(l)) {
      const graph::LinkKey key = net.link(l);
      EXPECT_TRUE(
          net.roles().role[key.a] == graph::NodeRole::kEdgeRouter ||
          net.roles().role[key.b] == graph::NodeRole::kEdgeRouter);
    }
  }
}

TEST(Network, SubnetlessHasNoSubnetInfo) {
  const Network net(graph::make_star(4), 0.25, 0.0);
  EXPECT_FALSE(net.subnet_of(1).has_value());
  EXPECT_EQ(net.num_subnets(), 0u);
}

}  // namespace
}  // namespace dq::sim
