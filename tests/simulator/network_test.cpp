#include "simulator/network.hpp"

#include <gtest/gtest.h>

namespace dq::sim {
namespace {

TEST(Network, WrapsGraphWithRoles) {
  Rng rng(1);
  const Network net(graph::make_barabasi_albert(100, 2, rng));
  EXPECT_EQ(net.num_nodes(), 100u);
  EXPECT_EQ(net.roles().backbone.size(), 5u);
  EXPECT_EQ(net.roles().edge.size(), 10u);
  EXPECT_FALSE(net.has_subnets());
}

TEST(Network, LinkIndexRoundTrip) {
  const Network net(graph::make_star(5), 0.2, 0.0);
  EXPECT_EQ(net.num_links(), 4u);
  for (std::size_t l = 0; l < net.num_links(); ++l) {
    const graph::LinkKey key = net.link(l);
    EXPECT_EQ(net.link_index(key.a, key.b), l);
    EXPECT_EQ(net.link_index(key.b, key.a), l);
  }
  EXPECT_THROW(net.link_index(1, 2), std::invalid_argument);
}

TEST(Network, LinkLoadsAndMean) {
  const Network net(graph::make_star(4), 0.25, 0.0);
  // All three hub links carry load 6 (see routing tests).
  for (std::size_t l = 0; l < net.num_links(); ++l)
    EXPECT_EQ(net.link_load(l), 6u);
  EXPECT_DOUBLE_EQ(net.mean_link_load(), 6.0);
}

TEST(Network, SubnetTopologyRoles) {
  Rng rng(2);
  const Network net(graph::make_subnet_topology(3, 4, rng));
  EXPECT_TRUE(net.has_subnets());
  EXPECT_EQ(net.num_subnets(), 3u);
  EXPECT_EQ(net.roles().edge.size(), 3u);
  EXPECT_EQ(net.roles().backbone.size(), 0u);
  EXPECT_EQ(net.roles().hosts.size(), 12u);
  for (graph::NodeId gw : net.roles().edge)
    EXPECT_EQ(net.roles().role[gw], graph::NodeRole::kEdgeRouter);
}

TEST(Network, SubnetMembership) {
  Rng rng(3);
  const Network net(graph::make_subnet_topology(2, 3, rng));
  for (graph::NodeId v = 0; v < net.num_nodes(); ++v) {
    const auto subnet = net.subnet_of(v);
    ASSERT_TRUE(subnet.has_value());
    const auto& members = net.subnet_members(*subnet);
    EXPECT_NE(std::find(members.begin(), members.end(), v), members.end());
  }
}

TEST(Network, BackboneLinksOnSubnetTopologyAreGatewayInterconnect) {
  Rng rng(4);
  const Network net(graph::make_subnet_topology(3, 4, rng));
  std::size_t backbone_links = 0;
  for (std::size_t l = 0; l < net.num_links(); ++l) {
    if (net.link_is_backbone(l)) {
      ++backbone_links;
      const graph::LinkKey key = net.link(l);
      EXPECT_EQ(net.roles().role[key.a], graph::NodeRole::kEdgeRouter);
      EXPECT_EQ(net.roles().role[key.b], graph::NodeRole::kEdgeRouter);
    }
  }
  EXPECT_GE(backbone_links, 2u);  // 3 gateways interconnected
}

TEST(Network, EdgeLinksTouchEdgeRouters) {
  Rng rng(5);
  const Network net(graph::make_barabasi_albert(100, 2, rng));
  for (std::size_t l = 0; l < net.num_links(); ++l) {
    if (net.link_is_edge(l)) {
      const graph::LinkKey key = net.link(l);
      EXPECT_TRUE(
          net.roles().role[key.a] == graph::NodeRole::kEdgeRouter ||
          net.roles().role[key.b] == graph::NodeRole::kEdgeRouter);
    }
  }
}

TEST(Network, SubnetlessHasNoSubnetInfo) {
  const Network net(graph::make_star(4), 0.25, 0.0);
  EXPECT_FALSE(net.subnet_of(1).has_value());
  EXPECT_EQ(net.num_subnets(), 0u);
}

TEST(Network, BorrowedSubnetViewsMatchAccessors) {
  Rng rng(6);
  const Network net(graph::make_subnet_topology(3, 4, rng));
  ASSERT_EQ(net.subnet_ids().size(), net.num_nodes());
  ASSERT_EQ(net.subnet_lists().size(), net.num_subnets());
  for (graph::NodeId v = 0; v < net.num_nodes(); ++v)
    EXPECT_EQ(net.subnet_ids()[v], *net.subnet_of(v));
  for (std::size_t s = 0; s < net.num_subnets(); ++s)
    EXPECT_EQ(net.subnet_lists()[s], net.subnet_members(s));
}

// Satellite: adj_link used to read adj_[lo] unconditionally after its
// binary search — an OOB read in a noexcept function whenever the
// routing table named a non-adjacent next hop. The public path to the
// lookup is hop_toward with the dense table disabled; sweeping every
// (at, dest) pair drives the search into every row boundary (first,
// last, and only neighbors of each row) and must reproduce the dense
// table's answers exactly.
TEST(Network, HopTowardFallbackMatchesDenseTableOnEveryPair) {
  Rng rng(7);
  graph::Graph g = graph::make_barabasi_albert(60, 2, rng);
  NetworkOptions no_dense;
  no_dense.dense_hop_table_bytes = 0;
  const Network fallback(g, 0.05, 0.10, no_dense);
  const Network dense(std::move(g), 0.05, 0.10);
  ASSERT_TRUE(fallback.has_routing_table());
  for (graph::NodeId a = 0; a < fallback.num_nodes(); ++a)
    for (graph::NodeId b = 0; b < fallback.num_nodes(); ++b) {
      if (a == b) continue;
      const Network::HopStep fb = fallback.hop_toward(a, b);
      const Network::HopStep dn = dense.hop_toward(a, b);
      ASSERT_EQ(fb.next, dn.next) << a << "->" << b;
      ASSERT_EQ(fb.link, dn.link) << a << "->" << b;
    }
}

TEST(Network, TreeBackendSkipsAllPairsTable) {
  Rng rng(8);
  NetworkOptions opts;
  opts.routing_table_bytes = 0;  // force tree routing on a small graph
  const Network net(graph::make_barabasi_albert(80, 2, rng), 0.05, 0.10,
                    opts);
  EXPECT_FALSE(net.has_routing_table());
  EXPECT_THROW(net.routing(), std::logic_error);
  EXPECT_GT(net.total_link_load(), 0u);
}

TEST(Network, TreeBackendRoutesEveryPairAlongRealLinks) {
  Rng rng(9);
  graph::Graph g = graph::make_barabasi_albert(80, 2, rng);
  NetworkOptions opts;
  opts.routing_table_bytes = 0;
  const Network net(g, 0.05, 0.10, opts);
  const std::size_t n = net.num_nodes();
  for (graph::NodeId a = 0; a < n; ++a)
    for (graph::NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      graph::NodeId at = a;
      std::size_t hops = 0;
      while (at != b) {
        const Network::HopStep hop = net.hop_toward(at, b);
        ASSERT_TRUE(g.has_edge(at, hop.next)) << at << "->" << hop.next;
        ASSERT_EQ(net.link_index(at, hop.next), hop.link);
        at = hop.next;
        // A tree path visits every node at most once.
        ASSERT_LT(++hops, n) << a << "->" << b << " did not terminate";
      }
    }
}

TEST(Network, TreeBackendIsExactOnAStar) {
  // On a tree (the star is one) the BFS tree IS the graph, so tree
  // routing must agree with the all-pairs table on every hop and on
  // every link load.
  NetworkOptions opts;
  opts.routing_table_bytes = 0;
  const Network tree(graph::make_star(30), 1.0 / 30.0, 0.0, opts);
  const Network table(graph::make_star(30), 1.0 / 30.0, 0.0);
  ASSERT_EQ(tree.num_links(), table.num_links());
  for (graph::NodeId a = 0; a < 30; ++a)
    for (graph::NodeId b = 0; b < 30; ++b) {
      if (a == b) continue;
      const Network::HopStep x = tree.hop_toward(a, b);
      const Network::HopStep y = table.hop_toward(a, b);
      EXPECT_EQ(x.next, y.next);
      EXPECT_EQ(x.link, y.link);
    }
  for (std::size_t l = 0; l < tree.num_links(); ++l)
    EXPECT_EQ(tree.link_load(l), table.link_load(l));
  EXPECT_EQ(tree.total_link_load(), table.total_link_load());
}

}  // namespace
}  // namespace dq::sim
