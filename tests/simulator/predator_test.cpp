// Counter-worm ("predator") tests — the Blaster/Welchia dynamic from
// the paper's own trace: a patching worm that races the malicious one,
// cures the hosts it reaches, and eventually patches them closed.
#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "simulator/runner.hpp"
#include "simulator/worm_sim.hpp"

namespace dq::sim {
namespace {

const Network& net() {
  static const Network network = [] {
    Rng rng(31);
    return Network(graph::make_barabasi_albert(300, 2, rng));
  }();
  return network;
}

SimulationConfig config(double predator_start = 5.0) {
  SimulationConfig cfg;
  cfg.worm.contact_rate = 0.8;
  cfg.worm.initial_infected = 1;
  cfg.predator.enabled = true;
  cfg.predator.start_tick = predator_start;
  cfg.predator.initial = 1;
  cfg.predator.contact_rate = 1.2;  // Welchia swept faster than Blaster
  cfg.predator.patch_delay = 10.0;
  cfg.max_ticks = 120.0;
  cfg.seed = 5;
  return cfg;
}

TEST(Predator, Validation) {
  SimulationConfig cfg = config();
  cfg.predator.contact_rate = 0.0;
  EXPECT_THROW(WormSimulation(net(), cfg), std::invalid_argument);
  cfg = config();
  cfg.predator.initial = 0;
  EXPECT_THROW(WormSimulation(net(), cfg), std::invalid_argument);
  cfg = config();
  cfg.predator.patch_delay = -1.0;
  EXPECT_THROW(WormSimulation(net(), cfg), std::invalid_argument);
}

TEST(Predator, EventuallyCleansTheNetwork) {
  const RunResult result = WormSimulation(net(), config()).run();
  // The counter-worm takes over and then patches everyone closed: no
  // active main-worm infection survives.
  EXPECT_LT(result.active_infected.back_value(), 0.02);
  EXPECT_GT(result.removed.back_value(), 0.9);
  // The predator population itself dies down once patched.
  ASSERT_FALSE(result.predator_infected.empty());
  EXPECT_LT(result.predator_infected.back_value(), 0.1);
}

TEST(Predator, PredatorPopulationRisesThenFalls) {
  const RunResult result = WormSimulation(net(), config()).run();
  const double peak = result.predator_infected.max_value();
  EXPECT_GT(peak, 0.2);
  EXPECT_LT(result.predator_infected.back_value(), peak / 2.0);
}

TEST(Predator, CuredHostsCannotBeReinfected) {
  SimulationConfig cfg = config();
  cfg.max_ticks = 200.0;
  WormSimulation sim(net(), cfg);
  const RunResult result = sim.run();
  // After the dust settles every node is removed (patched) or was
  // never touched; none is left infected.
  std::size_t infected = 0;
  for (graph::NodeId v = 0; v < net().num_nodes(); ++v)
    infected += sim.state(v) == NodeState::kInfected;
  EXPECT_EQ(infected, 0u);
  EXPECT_LT(result.active_infected.back_value(), 1e-9);
}

TEST(Predator, EarlierReleaseLimitsTheOutbreak) {
  auto ever_infected = [&](double start) {
    SimulationConfig cfg = config(start);
    return run_many(net(), cfg, 5).ever_infected.back_value();
  };
  const double early = ever_infected(2.0);
  const double late = ever_infected(12.0);
  EXPECT_LT(early, late);
}

TEST(Predator, EverInfectedTracksMainWormOnly) {
  // With a predator released before the worm can move, almost nothing
  // gets infected by the main worm even though the predator sweeps
  // the whole network.
  SimulationConfig cfg = config(0.0);
  cfg.predator.initial = 10;
  cfg.predator.contact_rate = 3.0;
  const RunResult result = WormSimulation(net(), cfg).run();
  EXPECT_LT(result.ever_infected.back_value(), 0.5);
  EXPECT_GT(result.removed.back_value(), 0.9);
}

TEST(Predator, RateLimitingSlowsThePredatorToo) {
  // Nuance: backbone rate limiting throttles the cure as much as the
  // disease — the total ever-infected can *rise* with rate limiting
  // when a fast predator is the main defense.
  SimulationConfig cfg = config(5.0);
  const double open = run_many(net(), cfg, 5).ever_infected.back_value();
  cfg.deployment.backbone_limited = true;
  cfg.deployment.weight_by_routing_load = false;
  cfg.deployment.base_link_capacity = 1.0;
  cfg.deployment.min_link_capacity = 1.0;
  cfg.max_ticks = 300.0;
  const AveragedResult throttled = run_many(net(), cfg, 5);
  // Both spread slower; assert the predator still wins eventually.
  EXPECT_LT(throttled.active_infected.back_value(), 0.1);
  // And record the direction of the interaction for the curious:
  // no assertion on ordering vs `open` — both outcomes are legitimate
  // depending on rates — only that the system stays consistent.
  EXPECT_GT(open, 0.0);
}

TEST(Predator, DisabledByDefault) {
  SimulationConfig cfg;
  cfg.worm.contact_rate = 0.8;
  cfg.max_ticks = 30.0;
  cfg.seed = 9;
  const RunResult result = WormSimulation(net(), cfg).run();
  EXPECT_TRUE(result.predator_infected.empty());
}

}  // namespace
}  // namespace dq::sim
