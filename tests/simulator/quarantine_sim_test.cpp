#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "simulator/runner.hpp"
#include "simulator/worm_sim.hpp"

namespace dq::sim {
namespace {

/// An aggressive scanner sweeping a sparse address space: 90% of its
/// scans miss (failed connections), which is exactly the signal the
/// quarantine detectors key on. Legit traffic stays far below every
/// threshold.
SimulationConfig scanner_config() {
  SimulationConfig cfg;
  cfg.worm.contact_rate = 8.0;
  cfg.worm.filtered_contact_rate = 0.01;
  cfg.worm.hit_probability = 0.1;
  cfg.worm.initial_infected = 2;
  cfg.legit.rate_per_node = 0.2;
  cfg.quarantine.enabled = true;
  cfg.quarantine.policy.base_period = 20.0;
  cfg.max_ticks = 60.0;
  cfg.stop_when_saturated = false;
  cfg.seed = 13;
  return cfg;
}

Network star_net(std::size_t n = 150) {
  return Network(graph::make_star(n), 1.0 / static_cast<double>(n), 0.0);
}

TEST(QuarantineSim, Validation) {
  const Network net = star_net(50);
  SimulationConfig cfg = scanner_config();
  cfg.worm.hit_probability = 0.0;
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
  cfg = scanner_config();
  cfg.worm.hit_probability = 1.5;
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
  cfg = scanner_config();
  cfg.quarantine.policy.escalation = 0.5;
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
  // Alarm-driven start requires the dark-space detector, for both the
  // quarantine engine and the baseline responses.
  cfg = scanner_config();
  cfg.quarantine.start_on_detection = true;
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
  cfg = scanner_config();
  cfg.response.kind = ResponseConfig::Kind::kBlacklist;
  cfg.response.start_on_detection = true;
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
}

TEST(QuarantineSim, SparseAddressSpaceDelaysSpread) {
  const Network net = star_net();
  SimulationConfig cfg = scanner_config();
  cfg.quarantine.enabled = false;
  const RunResult sparse = WormSimulation(net, cfg).run();
  cfg.worm.hit_probability = 1.0;
  const RunResult dense = WormSimulation(net, cfg).run();
  EXPECT_GT(dense.total_scan_packets, sparse.total_scan_packets);
  EXPECT_GE(dense.ever_infected.back_value(),
            sparse.ever_infected.back_value());
}

TEST(QuarantineSim, QuarantineContainsTheScanner) {
  const Network net = star_net();
  SimulationConfig cfg = scanner_config();
  cfg.quarantine.enabled = false;
  const RunResult open = WormSimulation(net, cfg).run();
  cfg.quarantine.enabled = true;
  const RunResult contained = WormSimulation(net, cfg).run();

  EXPECT_GT(open.ever_infected.back_value(),
            contained.ever_infected.back_value() + 0.2);
  // Every infected host was caught, quickly, and isolation did work.
  EXPECT_GT(contained.quarantine.detection_rate, 0.8);
  EXPECT_GE(contained.quarantine.mean_detection_latency, 0.0);
  EXPECT_GT(contained.quarantine_dropped_packets, 0u);
  // Bounded penalty: ordinary hosts at 0.2 contacts/tick never trip a
  // detector tuned for tens of contacts per window.
  EXPECT_DOUBLE_EQ(contained.quarantine.false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(contained.quarantine.benign_quarantine_time, 0.0);
}

TEST(QuarantineSim, IsolatedHostsLoseLegitTrafficToo) {
  // kDropAll is full isolation: a quarantined host's legitimate
  // packets are collateral, and the simulator accounts for them.
  const Network net = star_net();
  const RunResult r = WormSimulation(net, scanner_config()).run();
  EXPECT_GT(r.legit_quarantine_dropped, 0u);
  EXPECT_LE(r.legit_quarantine_dropped, r.legit_sent);
}

TEST(QuarantineSim, ThrottleTreatmentAlsoContains) {
  const Network net = star_net();
  SimulationConfig cfg = scanner_config();
  cfg.quarantine.enabled = false;
  const RunResult open = WormSimulation(net, cfg).run();
  cfg.quarantine.enabled = true;
  cfg.quarantine.policy.treatment = quarantine::Treatment::kThrottle;
  cfg.quarantine.policy.throttle_rate = 0.01;
  const RunResult throttled = WormSimulation(net, cfg).run();
  EXPECT_GT(open.ever_infected.back_value(),
            throttled.ever_infected.back_value() + 0.2);
  // Throttling caps the rate instead of isolating: no packets are
  // administratively destroyed at a quarantine boundary.
  EXPECT_EQ(throttled.quarantine_dropped_packets, 0u);
  EXPECT_EQ(throttled.legit_quarantine_dropped, 0u);
}

TEST(QuarantineSim, DeterministicAcrossWorkerCounts) {
  // The quarantine path adds RNG draws (hit-probability misses) and
  // per-run reports; both must stay bit-identical between 1 and 8
  // worker threads.
  Rng rng(9);
  const Network net(graph::make_barabasi_albert(200, 2, rng));
  SimulationConfig cfg = scanner_config();
  cfg.max_ticks = 40.0;
  const AveragedResult serial = run_many(net, cfg, 8, 1);
  const AveragedResult parallel = run_many(net, cfg, 8, 8);
  ASSERT_EQ(serial.ever_infected.size(), parallel.ever_infected.size());
  for (std::size_t i = 0; i < serial.ever_infected.size(); ++i)
    EXPECT_DOUBLE_EQ(serial.ever_infected.value_at(i),
                     parallel.ever_infected.value_at(i));
  EXPECT_DOUBLE_EQ(serial.quarantine_mean.detection_rate,
                   parallel.quarantine_mean.detection_rate);
  EXPECT_DOUBLE_EQ(serial.quarantine_mean.mean_detection_latency,
                   parallel.quarantine_mean.mean_detection_latency);
  EXPECT_DOUBLE_EQ(serial.quarantine_mean.false_positive_rate,
                   parallel.quarantine_mean.false_positive_rate);
  EXPECT_DOUBLE_EQ(serial.quarantine_mean.quarantine_events,
                   parallel.quarantine_mean.quarantine_events);
  EXPECT_DOUBLE_EQ(serial.mean_quarantine_dropped,
                   parallel.mean_quarantine_dropped);
  EXPECT_DOUBLE_EQ(serial.mean_legit_quarantine_dropped,
                   parallel.mean_legit_quarantine_dropped);
}

TEST(QuarantineSim, StartOnDetectionWaitsForTheAlarm) {
  const Network net = star_net();
  SimulationConfig cfg = scanner_config();
  cfg.quarantine.start_on_detection = true;
  cfg.detector.enabled = true;

  // Alarm that can never fire: the engine stays dormant all run.
  cfg.detector.observe_probability = 1e-9;
  cfg.detector.threshold = 1000000;
  const RunResult dormant = WormSimulation(net, cfg).run();
  EXPECT_DOUBLE_EQ(dormant.detection_tick, -1.0);
  EXPECT_DOUBLE_EQ(dormant.quarantine.quarantine_events, 0.0);

  // A hair-trigger alarm: quarantine kicks in and contains.
  cfg.detector.observe_probability = 0.5;
  cfg.detector.threshold = 5;
  const RunResult armed = WormSimulation(net, cfg).run();
  EXPECT_GE(armed.detection_tick, 0.0);
  EXPECT_GT(armed.quarantine.quarantine_events, 0.0);
  EXPECT_GT(dormant.ever_infected.back_value(),
            armed.ever_infected.back_value());
}

TEST(QuarantineSim, BlacklistStartOnDetectionStaysDormantWithoutAlarm) {
  const Network net = star_net();
  SimulationConfig cfg = scanner_config();
  cfg.quarantine.enabled = false;
  cfg.response.kind = ResponseConfig::Kind::kBlacklist;
  cfg.response.reaction_time = 2.0;
  cfg.response.filters_everywhere = true;
  cfg.response.start_on_detection = true;
  cfg.detector.enabled = true;
  cfg.detector.observe_probability = 1e-9;
  cfg.detector.threshold = 1000000;
  const RunResult dormant = WormSimulation(net, cfg).run();
  EXPECT_EQ(dormant.worm_packets_dropped, 0u);

  cfg.detector.observe_probability = 0.5;
  cfg.detector.threshold = 5;
  const RunResult armed = WormSimulation(net, cfg).run();
  EXPECT_GT(armed.worm_packets_dropped, 0u);
}

}  // namespace
}  // namespace dq::sim
