#include "simulator/runner.hpp"

#include <gtest/gtest.h>

#include "graph/builders.hpp"

namespace dq::sim {
namespace {

SimulationConfig base_config() {
  SimulationConfig cfg;
  cfg.worm.contact_rate = 0.8;
  cfg.worm.initial_infected = 1;
  cfg.max_ticks = 30.0;
  cfg.seed = 11;
  return cfg;
}

TEST(Runner, RejectsZeroRuns) {
  const Network net(graph::make_star(20), 0.05, 0.0);
  EXPECT_THROW(run_many(net, base_config(), 0), std::invalid_argument);
}

TEST(Runner, AveragesOnIntegerGrid) {
  const Network net(graph::make_star(20), 0.05, 0.0);
  const AveragedResult avg = run_many(net, base_config(), 4);
  EXPECT_EQ(avg.runs, 4u);
  ASSERT_EQ(avg.ever_infected.size(), 31u);
  EXPECT_DOUBLE_EQ(avg.ever_infected.time_at(0), 0.0);
  EXPECT_DOUBLE_EQ(avg.ever_infected.time_at(30), 30.0);
}

TEST(Runner, AverageLiesWithinRunEnvelope) {
  const Network net(graph::make_star(40), 0.025, 0.0);
  const SimulationConfig cfg = base_config();
  const AveragedResult avg = run_many(net, cfg, 5);

  // Each individual run's final value brackets the average.
  double lo = 1.0, hi = 0.0;
  for (std::size_t r = 0; r < 5; ++r) {
    SimulationConfig one = cfg;
    one.seed = run_seed(cfg.seed, r);
    WormSimulation sim(net, one);
    const double v = sim.run().ever_infected.back_value();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(avg.ever_infected.back_value(), lo - 1e-9);
  EXPECT_LE(avg.ever_infected.back_value(), hi + 1e-9);
}

TEST(Runner, SeedSubstreamsDoNotOverlapAcrossAdjacentBases) {
  // Regression: seeds used to be base + r, so run r of base S was
  // bit-identical to run r-1 of base S+1 — adjacent-seed sweeps shared
  // RNG streams. The mix64 substream keeps every (base, run) pair
  // distinct...
  const std::uint64_t base = 11;
  for (std::size_t r = 1; r <= 8; ++r)
    EXPECT_NE(run_seed(base, r), run_seed(base + 1, r - 1)) << r;
  EXPECT_NE(run_seed(base, 0), base);  // run 0 is a substream too

  // ...and the trajectories diverge accordingly: run 1 of seed S no
  // longer repeats run 0 of seed S+1.
  const Network net(graph::make_star(40), 0.025, 0.0);
  SimulationConfig a = base_config();
  a.seed = run_seed(base, 1);
  SimulationConfig b = base_config();
  b.seed = run_seed(base + 1, 0);
  const RunResult ra = WormSimulation(net, a).run();
  const RunResult rb = WormSimulation(net, b).run();
  bool identical = ra.ever_infected.size() == rb.ever_infected.size();
  if (identical)
    for (std::size_t i = 0; i < ra.ever_infected.size(); ++i)
      identical = identical && ra.ever_infected.value_at(i) ==
                                   rb.ever_infected.value_at(i);
  EXPECT_FALSE(identical);
}

TEST(Runner, EarlyStoppedRunsExtendToHorizon) {
  // Saturating runs stop early; the averaged series must still cover
  // the full horizon with the saturated value held constant.
  const Network net(graph::make_star(10), 0.1, 0.0);
  SimulationConfig cfg = base_config();
  cfg.max_ticks = 50.0;
  const AveragedResult avg = run_many(net, cfg, 3);
  EXPECT_DOUBLE_EQ(avg.ever_infected.back_time(), 50.0);
  EXPECT_DOUBLE_EQ(avg.ever_infected.back_value(), 1.0);
}

TEST(Runner, ImmunizationStartAveraged) {
  const Network net(graph::make_star(50), 0.02, 0.0);
  SimulationConfig cfg = base_config();
  cfg.immunization.enabled = true;
  cfg.immunization.rate = 0.1;
  cfg.immunization.start_at_tick = 4.0;
  const AveragedResult avg = run_many(net, cfg, 3);
  EXPECT_NEAR(avg.mean_immunization_start, 4.0, 1.0);
}

TEST(Runner, NoImmunizationReportsMinusOne) {
  const Network net(graph::make_star(20), 0.05, 0.0);
  const AveragedResult avg = run_many(net, base_config(), 2);
  EXPECT_DOUBLE_EQ(avg.mean_immunization_start, -1.0);
}

TEST(Runner, ParallelMatchesSerialExactly) {
  Rng rng(9);
  const Network net(graph::make_barabasi_albert(200, 2, rng));
  SimulationConfig cfg = base_config();
  cfg.max_ticks = 40.0;
  const AveragedResult serial = run_many(net, cfg, 6, 1);
  const AveragedResult parallel = run_many(net, cfg, 6, 4);
  ASSERT_EQ(serial.ever_infected.size(), parallel.ever_infected.size());
  for (std::size_t i = 0; i < serial.ever_infected.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.ever_infected.value_at(i),
                     parallel.ever_infected.value_at(i));
    EXPECT_DOUBLE_EQ(serial.active_infected.value_at(i),
                     parallel.active_infected.value_at(i));
  }
}

TEST(Runner, EightWayParallelMatchesSerialExactly) {
  // Determinism must not depend on the worker count: every run's RNG
  // stream is fixed by its seed, so 1 and 8 workers give bit-identical
  // averaged curves (and the same aggregate tick-loop counters).
  Rng rng(9);
  const Network net(graph::make_barabasi_albert(200, 2, rng));
  SimulationConfig cfg = base_config();
  cfg.max_ticks = 40.0;
  const AveragedResult serial = run_many(net, cfg, 8, 1);
  const AveragedResult parallel = run_many(net, cfg, 8, 8);
  ASSERT_EQ(serial.ever_infected.size(), parallel.ever_infected.size());
  for (std::size_t i = 0; i < serial.ever_infected.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.ever_infected.value_at(i),
                     parallel.ever_infected.value_at(i));
    EXPECT_DOUBLE_EQ(serial.active_infected.value_at(i),
                     parallel.active_infected.value_at(i));
    EXPECT_DOUBLE_EQ(serial.removed.value_at(i),
                     parallel.removed.value_at(i));
  }
  EXPECT_EQ(serial.perf_counters.ticks, parallel.perf_counters.ticks);
  EXPECT_EQ(serial.perf_counters.packets_forwarded,
            parallel.perf_counters.packets_forwarded);
  EXPECT_EQ(serial.perf_counters.queue_events,
            parallel.perf_counters.queue_events);
}

TEST(Runner, MaxRunSecondsTracksTheCriticalPath) {
  // perf_counters carries only deterministic event counts (the old
  // summed-seconds perf_total was retired); perf_max_run_seconds is
  // the slowest single run — the honest wall-clock floor under
  // parallelism.
  const Network net(graph::make_star(40), 0.025, 0.0);
  const AveragedResult avg = run_many(net, base_config(), 4);
  EXPECT_GT(avg.perf_max_run_seconds, 0.0);
  EXPECT_EQ(avg.perf_counters.total_seconds(), 0.0);
  EXPECT_GT(avg.perf_counters.ticks, 0u);
}

TEST(Runner, SeedSubnetAveragedOnSubnets) {
  Rng rng(5);
  const Network net(graph::make_subnet_topology(5, 8, rng));
  const AveragedResult avg = run_many(net, base_config(), 3);
  EXPECT_FALSE(avg.seed_subnet_infected.empty());
  EXPECT_EQ(avg.seed_subnet_infected.size(), avg.ever_infected.size());
}

}  // namespace
}  // namespace dq::sim
