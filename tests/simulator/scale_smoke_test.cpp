// Million-node smoke: the whole point of the sharded core and the
// tree-routing fallback is that a 10⁶-node network constructs and
// simulates in bounded memory. A dense all-pairs table alone would be
// 8 TB at this size; the budget below allows for the graph, the tree
// routing arrays, and the SoA simulation state with generous slack
// while staying far under anything O(N²) could fit in.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "simulator/sharded_sim.hpp"

namespace dq::sim {
namespace {

/// Peak resident set in bytes via /proc/self/status (Linux only;
/// returns 0 elsewhere so the assertion degrades to a skip).
std::size_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  std::size_t peak = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      peak = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10)) *
             1024;
      break;
    }
  }
  std::fclose(f);
  return peak;
}

TEST(ScaleSmoke, MillionNodeNetworkSimulatesInBoundedMemory) {
  constexpr std::size_t kNodes = 1'000'000;
  constexpr std::size_t kBudgetBytes = 4ull << 30;  // 4 GiB peak RSS

  Rng rng(2026);
  const Network net(graph::make_barabasi_albert(kNodes, 2, rng), 0.05,
                    0.10);
  ASSERT_EQ(net.num_nodes(), kNodes);
  // Above the dense-table cap the constructor must pick tree routing.
  EXPECT_FALSE(net.has_routing_table());
  EXPECT_THROW(net.routing(), std::logic_error);
  EXPECT_GT(net.total_link_load(), 0u);

  SimulationConfig cfg;
  cfg.worm.contact_rate = 1.5;
  cfg.worm.initial_infected = 50;
  cfg.worm.hit_probability = 0.8;
  cfg.max_ticks = 12.0;
  cfg.seed = 7;

  ShardedSimulation sim(net, cfg);  // hardware shard count
  const RunResult result = sim.run();
  EXPECT_GT(result.final_ever_infected_count, cfg.worm.initial_infected);
  EXPECT_GT(result.total_scan_packets, 0u);

  const std::size_t peak = peak_rss_bytes();
  if (peak == 0) GTEST_SKIP() << "no /proc/self/status on this platform";
  EXPECT_LT(peak, kBudgetBytes)
      << "peak RSS " << (peak >> 20) << " MiB exceeds the scale budget";
}

}  // namespace
}  // namespace dq::sim
