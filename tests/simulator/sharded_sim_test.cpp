// ShardedSimulation's one load-bearing promise: trajectories are a
// pure function of (network, config) — the shard count must never
// show through. Each invariance test runs the same scenario at 1, 2,
// 3, and 7 shards and demands bit-identical results everywhere a
// number comes out.
#include "simulator/sharded_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dq::sim {
namespace {

void expect_series_identical(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.times(), b.times());
  EXPECT_EQ(a.values(), b.values());
}

void expect_identical(const RunResult& a, const RunResult& b) {
  expect_series_identical(a.active_infected, b.active_infected);
  expect_series_identical(a.ever_infected, b.ever_infected);
  expect_series_identical(a.removed, b.removed);
  expect_series_identical(a.seed_subnet_infected, b.seed_subnet_infected);
  EXPECT_EQ(a.immunization_start_tick, b.immunization_start_tick);
  EXPECT_EQ(a.detection_tick, b.detection_tick);
  EXPECT_EQ(a.total_scan_packets, b.total_scan_packets);
  EXPECT_EQ(a.final_ever_infected_count, b.final_ever_infected_count);
  EXPECT_EQ(a.quarantine_dropped_packets, b.quarantine_dropped_packets);
  EXPECT_EQ(a.perf.ticks, b.perf.ticks);
  EXPECT_EQ(a.perf.packets_forwarded, b.perf.packets_forwarded);
  EXPECT_EQ(a.quarantine.target_hosts, b.quarantine.target_hosts);
  EXPECT_EQ(a.quarantine.benign_hosts, b.quarantine.benign_hosts);
  EXPECT_EQ(a.quarantine.detected_targets, b.quarantine.detected_targets);
  EXPECT_EQ(a.quarantine.detection_rate, b.quarantine.detection_rate);
  EXPECT_EQ(a.quarantine.mean_detection_latency,
            b.quarantine.mean_detection_latency);
  EXPECT_EQ(a.quarantine.false_positive_hosts,
            b.quarantine.false_positive_hosts);
  EXPECT_EQ(a.quarantine.false_positive_rate,
            b.quarantine.false_positive_rate);
  EXPECT_EQ(a.quarantine.benign_quarantine_time,
            b.quarantine.benign_quarantine_time);
  EXPECT_EQ(a.quarantine.target_quarantine_time,
            b.quarantine.target_quarantine_time);
  EXPECT_EQ(a.quarantine.quarantine_events, b.quarantine.quarantine_events);
}

void expect_shard_invariant(const Network& net,
                            const SimulationConfig& cfg) {
  const RunResult base = ShardedSimulation(net, cfg, 1).run();
  // The interesting outcome: something actually happened.
  ASSERT_GT(base.final_ever_infected_count, cfg.worm.initial_infected);
  for (std::size_t shards : {2u, 3u, 7u}) {
    SCOPED_TRACE(shards);
    const RunResult result = ShardedSimulation(net, cfg, shards).run();
    expect_identical(base, result);
  }
}

SimulationConfig scale_config() {
  SimulationConfig cfg;
  cfg.worm.contact_rate = 1.2;
  cfg.worm.initial_infected = 3;
  cfg.max_ticks = 30.0;
  cfg.seed = 42;
  return cfg;
}

TEST(ShardedSim, ShardCountInvariantDense) {
  Rng rng(11);
  const Network net(graph::make_barabasi_albert(500, 2, rng));
  expect_shard_invariant(net, scale_config());
}

TEST(ShardedSim, ShardCountInvariantSparseWithDetector) {
  Rng rng(12);
  const Network net(graph::make_barabasi_albert(500, 2, rng));
  SimulationConfig cfg = scale_config();
  cfg.worm.hit_probability = 0.4;
  cfg.detector.enabled = true;
  cfg.detector.observe_probability = 0.05;
  cfg.detector.threshold = 8;
  cfg.max_ticks = 40.0;
  expect_shard_invariant(net, cfg);
}

TEST(ShardedSim, ShardCountInvariantSubnetLocalPreferential) {
  Rng rng(13);
  const Network net(graph::make_subnet_topology(8, 40, rng));
  SimulationConfig cfg = scale_config();
  cfg.worm.selection = TargetSelection::kLocalPreferential;
  cfg.worm.local_bias = 0.7;
  expect_shard_invariant(net, cfg);
}

TEST(ShardedSim, ShardCountInvariantQuarantineAndImmunization) {
  Rng rng(14);
  const Network net(graph::make_barabasi_albert(400, 2, rng));
  SimulationConfig cfg = scale_config();
  cfg.worm.hit_probability = 0.5;
  cfg.worm.filtered_contact_rate = 0.05;
  cfg.deployment.host_filter_fraction = 0.3;
  cfg.quarantine.enabled = true;
  cfg.quarantine.detector.window = 3.0;
  cfg.quarantine.detector.contact_rate_threshold = 4.0;
  cfg.quarantine.policy.base_period = 10.0;
  cfg.immunization.enabled = true;
  cfg.immunization.start_at_infected_fraction = 0.3;
  cfg.immunization.rate = 0.05;
  cfg.max_ticks = 50.0;
  expect_shard_invariant(net, cfg);
}

TEST(ShardedSim, ShardCountInvariantThrottleQuarantine) {
  Rng rng(15);
  const Network net(graph::make_barabasi_albert(300, 2, rng));
  SimulationConfig cfg = scale_config();
  cfg.worm.hit_probability = 0.6;
  cfg.quarantine.enabled = true;
  cfg.quarantine.detector.window = 3.0;
  cfg.quarantine.detector.contact_rate_threshold = 4.0;
  cfg.quarantine.policy.treatment = quarantine::Treatment::kThrottle;
  cfg.quarantine.policy.throttle_rate = 0.1;
  cfg.quarantine.policy.base_period = 8.0;
  cfg.max_ticks = 40.0;
  expect_shard_invariant(net, cfg);
}

TEST(ShardedSim, RepeatedRunsAreDeterministic) {
  Rng rng(16);
  const Network net(graph::make_barabasi_albert(300, 2, rng));
  const SimulationConfig cfg = scale_config();
  const RunResult a = ShardedSimulation(net, cfg, 4).run();
  const RunResult b = ShardedSimulation(net, cfg, 4).run();
  expect_identical(a, b);
}

TEST(ShardedSim, SeedChangesTheTrajectory) {
  Rng rng(17);
  const Network net(graph::make_barabasi_albert(300, 2, rng));
  SimulationConfig cfg = scale_config();
  const RunResult a = ShardedSimulation(net, cfg, 2).run();
  cfg.seed += 1;
  const RunResult b = ShardedSimulation(net, cfg, 2).run();
  EXPECT_NE(a.total_scan_packets, b.total_scan_packets);
}

TEST(ShardedSim, WorksOnTreeRoutedNetworksWithoutDenseTables) {
  Rng rng(18);
  NetworkOptions opts;
  opts.routing_table_bytes = 0;  // tree routing even at this size
  const Network net(graph::make_barabasi_albert(400, 2, rng), 0.05, 0.10,
                    opts);
  expect_shard_invariant(net, scale_config());
}

TEST(ShardedSim, StepInterfaceMatchesSerialShape) {
  Rng rng(19);
  const Network net(graph::make_barabasi_albert(200, 2, rng));
  SimulationConfig cfg = scale_config();
  ShardedSimulation sim(net, cfg, 3);
  EXPECT_EQ(sim.tick(), 0.0);
  EXPECT_EQ(sim.ever_infected_count(), cfg.worm.initial_infected);
  sim.step();
  EXPECT_EQ(sim.tick(), 1.0);
  EXPECT_GE(sim.ever_infected_count(), cfg.worm.initial_infected);
}

TEST(ShardedSim, RejectsMechanismsOutsideTheScaleTier) {
  Rng rng(20);
  const Network net(graph::make_barabasi_albert(100, 2, rng));
  const auto rejects = [&](const SimulationConfig& cfg) {
    EXPECT_THROW(ShardedSimulation(net, cfg, 2), std::invalid_argument);
  };
  {
    SimulationConfig cfg = scale_config();
    cfg.deployment.edge_router_limited = true;
    rejects(cfg);
  }
  {
    SimulationConfig cfg = scale_config();
    cfg.deployment.backbone_limited = true;
    rejects(cfg);
  }
  {
    SimulationConfig cfg = scale_config();
    cfg.deployment.node_forward_cap = {0u, 5u};
    rejects(cfg);
  }
  {
    SimulationConfig cfg = scale_config();
    cfg.response.kind = ResponseConfig::Kind::kBlacklist;
    rejects(cfg);
  }
  {
    SimulationConfig cfg = scale_config();
    cfg.legit.rate_per_node = 0.5;
    rejects(cfg);
  }
  {
    SimulationConfig cfg = scale_config();
    cfg.predator.enabled = true;
    rejects(cfg);
  }
  {
    SimulationConfig cfg = scale_config();
    cfg.worm.selection = TargetSelection::kSequential;
    rejects(cfg);
  }
  {
    SimulationConfig cfg = scale_config();
    cfg.worm.selection = TargetSelection::kPermutation;
    rejects(cfg);
  }
  {
    SimulationConfig cfg = scale_config();
    cfg.worm.selection = TargetSelection::kHitlist;
    rejects(cfg);
  }
}

}  // namespace
}  // namespace dq::sim
