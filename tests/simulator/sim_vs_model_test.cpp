// Integration tests: the packet simulator must track the analytical
// epidemic models — the paper's core validation ("the simulation
// results confirm our analytical models").
#include <gtest/gtest.h>

#include "epidemic/hub_model.hpp"
#include "epidemic/partial_deployment.hpp"
#include "epidemic/si_model.hpp"
#include "graph/builders.hpp"
#include "simulator/runner.hpp"

namespace dq::sim {
namespace {

SimulationConfig config(double beta, std::uint32_t initial) {
  SimulationConfig cfg;
  cfg.worm.contact_rate = beta;
  cfg.worm.filtered_contact_rate = 0.01;
  cfg.worm.initial_infected = initial;
  cfg.max_ticks = 60.0;
  cfg.seed = 42;
  return cfg;
}

TEST(SimVsModel, UnlimitedWormTracksHomogeneousModel) {
  // On a well-connected graph with no rate limiting, the simulated
  // epidemic should reach milestones on the same time scale as the
  // homogeneous SI model (discrete ticks and stochastic startup allow
  // some slack; we seed 10 infections to tame the early variance).
  Rng rng(1);
  const Network net(graph::make_barabasi_albert(1000, 2, rng));
  const AveragedResult avg = run_many(net, config(0.8, 10), 10);

  epidemic::SiParams p;
  p.population = 1000.0;
  p.contact_rate = 0.8;
  p.initial_infected = 10.0;
  const epidemic::HomogeneousSi model(p);

  const double t50_sim = avg.ever_infected.time_to_reach(0.5);
  const double t50_model = model.time_to_level(0.5);
  ASSERT_GT(t50_sim, 0.0);
  // Discrete-tick compounding (1+β)^t vs e^{βt} makes the simulation
  // lag by a bounded factor; it must stay on the same time scale.
  EXPECT_GT(t50_sim, 0.6 * t50_model);
  EXPECT_LT(t50_sim, 2.2 * t50_model);
}

TEST(SimVsModel, HostDeploymentLinearSlowdownLaw) {
  // The λ = qβ₂ + (1−q)β₁ law: measure the sim's slowdown at q = 0.5
  // and compare to the model's prediction.
  Rng rng(2);
  const Network net(graph::make_barabasi_albert(500, 2, rng));

  SimulationConfig cfg = config(0.8, 5);
  const AveragedResult base = run_many(net, cfg, 8);
  cfg.deployment.host_filter_fraction = 0.5;
  const AveragedResult half = run_many(net, cfg, 8);

  const double t_base = base.ever_infected.time_to_reach(0.5);
  const double t_half = half.ever_infected.time_to_reach(0.5);
  ASSERT_GT(t_base, 0.0);
  ASSERT_GT(t_half, 0.0);
  const double measured = t_half / t_base;

  // Hosts are 85% of nodes, so the effective filtered share is
  // q_eff = 0.5 * 0.85 = 0.425 and the predicted slowdown is
  // β / (q_eff β₂ + (1−q_eff) β).
  const double q_eff = 0.5 * 0.85;
  const double lambda = q_eff * 0.01 + (1.0 - q_eff) * 0.8;
  const double predicted = 0.8 / lambda;
  EXPECT_NEAR(measured, predicted, predicted * 0.45);
}

TEST(SimVsModel, DeploymentOrderingMatchesPaper) {
  // Figure 4's ordering: no RL ≈ 5% hosts < edge < backbone.
  Rng rng(3);
  const Network net(graph::make_barabasi_albert(500, 2, rng));

  auto t50 = [&](bool edge, bool backbone, double host_fraction) {
    SimulationConfig cfg = config(0.8, 5);
    cfg.max_ticks = 150.0;
    cfg.deployment.host_filter_fraction = host_fraction;
    cfg.deployment.edge_router_limited = edge;
    cfg.deployment.backbone_limited = backbone;
    const AveragedResult avg = run_many(net, cfg, 5);
    const double t = avg.ever_infected.time_to_reach(0.5);
    return t < 0.0 ? 1e9 : t;  // "never" sorts last
  };

  const double none = t50(false, false, 0.0);
  const double host5 = t50(false, false, 0.05);
  const double edge = t50(true, false, 0.0);
  const double backbone = t50(false, true, 0.0);

  EXPECT_NEAR(host5, none, none * 0.35);  // 5% hosts ≈ nothing
  EXPECT_GT(edge, none * 0.9);            // edge helps a little
  EXPECT_GT(backbone, edge);              // backbone wins
  EXPECT_GT(backbone, none * 2.0);        // and decisively so
}

TEST(SimVsModel, HubLimitedStarTracksClosedForm) {
  // Section 4's hub regime: once the leaves' combined demand
  // saturates the hub, dI/dt = β(N−I)/N and the paper derives
  // t ≈ N·ln(α)/β to reach level α. Pin the simulated hub-capped star
  // (forward cap 6/tick at the hub, Figure 1(b)'s "hub-RL" series)
  // to the HubModel closed form within 25%.
  const Network net(graph::make_star(200), 1.0 / 200.0, 0.0);
  SimulationConfig cfg = config(0.8, 1);
  cfg.max_ticks = 60.0;
  cfg.deployment.node_forward_cap = {0u, 6u};
  const AveragedResult avg = run_many(net, cfg, 10);
  const double t60_sim = avg.ever_infected.time_to_reach(0.6);

  epidemic::HubModelParams p;
  p.population = 200.0;
  p.link_rate = 0.8;  // γ = β₁: each infected leaf pushes at full rate
  p.hub_rate = 6.0;   // the hub forwards at most 6 contacts per tick
  p.initial_infected = 1.0;
  const double t60_model = epidemic::HubModel(p).time_to_level(0.6);

  ASSERT_GT(t60_sim, 0.0);
  ASSERT_GT(t60_model, 0.0);
  EXPECT_NEAR(t60_sim, t60_model, 0.25 * t60_model);
}

TEST(SimVsModel, ImmunizationEarlierIsBetterInSim) {
  Rng rng(4);
  const Network net(graph::make_barabasi_albert(500, 2, rng));
  auto final_ever = [&](double level) {
    SimulationConfig cfg = config(0.8, 5);
    cfg.immunization.enabled = true;
    cfg.immunization.rate = 0.1;
    cfg.immunization.start_at_infected_fraction = level;
    return run_many(net, cfg, 5).ever_infected.back_value();
  };
  const double at20 = final_ever(0.2);
  const double at50 = final_ever(0.5);
  const double at80 = final_ever(0.8);
  EXPECT_LT(at20, at50);
  EXPECT_LT(at50, at80);
  // Paper's Figure 8(a) ballparks.
  EXPECT_NEAR(at20, 0.80, 0.12);
  EXPECT_NEAR(at50, 0.90, 0.08);
  EXPECT_NEAR(at80, 0.98, 0.05);
}

}  // namespace
}  // namespace dq::sim
