#include "simulator/worm_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "graph/builders.hpp"

namespace dq::sim {
namespace {

SimulationConfig base_config() {
  SimulationConfig cfg;
  cfg.worm.contact_rate = 0.8;
  cfg.worm.filtered_contact_rate = 0.01;
  cfg.worm.initial_infected = 1;
  cfg.max_ticks = 100.0;
  cfg.seed = 7;
  return cfg;
}

Network star_net(std::size_t n = 50) {
  return Network(graph::make_star(n), 1.0 / static_cast<double>(n), 0.0);
}

TEST(WormSimulation, Validation) {
  const Network net = star_net();
  SimulationConfig cfg = base_config();
  cfg.worm.contact_rate = 0.0;
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
  cfg = base_config();
  cfg.worm.filtered_contact_rate = 1.0;  // above β
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
  cfg = base_config();
  cfg.worm.initial_infected = 0;
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
  cfg = base_config();
  cfg.worm.initial_infected = 50;
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
  cfg = base_config();
  cfg.deployment.host_filter_fraction = 1.5;
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
  cfg = base_config();
  cfg.immunization.enabled = true;
  cfg.immunization.rate = 0.0;
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
  cfg = base_config();
  cfg.deployment.node_forward_cap = {99u, 1u};
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
  cfg = base_config();
  cfg.max_ticks = 0.0;
  EXPECT_THROW(WormSimulation(net, cfg), std::invalid_argument);
}

TEST(WormSimulation, InitialStateAfterConstruction) {
  const Network net = star_net();
  SimulationConfig cfg = base_config();
  cfg.worm.initial_infected = 3;
  WormSimulation sim(net, cfg);
  EXPECT_DOUBLE_EQ(sim.tick(), 0.0);
  EXPECT_EQ(sim.ever_infected_count(), 3u);
  EXPECT_EQ(sim.active_infected_count(), 3u);
}

TEST(WormSimulation, DeterministicForSeed) {
  const Network net = star_net();
  WormSimulation a(net, base_config());
  WormSimulation b(net, base_config());
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  ASSERT_EQ(ra.ever_infected.size(), rb.ever_infected.size());
  for (std::size_t i = 0; i < ra.ever_infected.size(); ++i)
    EXPECT_DOUBLE_EQ(ra.ever_infected.value_at(i),
                     rb.ever_infected.value_at(i));
  EXPECT_EQ(ra.total_scan_packets, rb.total_scan_packets);
}

TEST(WormSimulation, DifferentSeedsDiffer) {
  const Network net = star_net();
  SimulationConfig cfg = base_config();
  WormSimulation a(net, cfg);
  cfg.seed = 8;
  WormSimulation b(net, cfg);
  EXPECT_NE(a.run().total_scan_packets, b.run().total_scan_packets);
}

TEST(WormSimulation, UnlimitedWormSaturates) {
  const Network net = star_net();
  WormSimulation sim(net, base_config());
  const RunResult result = sim.run();
  EXPECT_EQ(result.final_ever_infected_count, net.num_nodes());
  EXPECT_DOUBLE_EQ(result.ever_infected.back_value(), 1.0);
  // Saturation should stop the run well before max_ticks.
  EXPECT_LT(result.ever_infected.back_time(), 100.0);
}

TEST(WormSimulation, EverInfectedMonotone) {
  const Network net = star_net();
  WormSimulation sim(net, base_config());
  const RunResult result = sim.run();
  double prev = 0.0;
  for (std::size_t i = 0; i < result.ever_infected.size(); ++i) {
    EXPECT_GE(result.ever_infected.value_at(i), prev);
    prev = result.ever_infected.value_at(i);
  }
}

TEST(WormSimulation, HostFiltersAssignedToRequestedFraction) {
  Rng rng(1);
  const Network net(graph::make_barabasi_albert(200, 2, rng));
  SimulationConfig cfg = base_config();
  cfg.deployment.host_filter_fraction = 0.3;
  WormSimulation sim(net, cfg);
  std::size_t filtered = 0;
  for (graph::NodeId v = 0; v < net.num_nodes(); ++v)
    filtered += sim.host_filtered(v);
  const std::size_t hosts = net.roles().hosts.size();
  EXPECT_NEAR(static_cast<double>(filtered), 0.3 * hosts, 1.0);
  // Filters only on hosts, never on routers.
  for (graph::NodeId b : net.roles().backbone)
    EXPECT_FALSE(sim.host_filtered(b));
  for (graph::NodeId e : net.roles().edge)
    EXPECT_FALSE(sim.host_filtered(e));
}

TEST(WormSimulation, FullHostFilteringSlowsSpread) {
  const Network net = star_net(100);
  SimulationConfig cfg = base_config();
  cfg.max_ticks = 30.0;
  const RunResult fast = WormSimulation(net, cfg).run();
  cfg.deployment.host_filter_fraction = 1.0;
  const RunResult slow = WormSimulation(net, cfg).run();
  EXPECT_GT(fast.ever_infected.back_value(),
            slow.ever_infected.back_value() + 0.3);
}

TEST(WormSimulation, LinkCapacityWeighting) {
  Rng rng(2);
  const Network net(graph::make_barabasi_albert(100, 2, rng));
  SimulationConfig cfg = base_config();
  cfg.deployment.backbone_limited = true;
  cfg.deployment.base_link_capacity = 10.0;
  cfg.deployment.min_link_capacity = 0.1;
  WormSimulation sim(net, cfg);
  double max_cap = 0.0;
  std::size_t limited = 0;
  for (std::size_t l = 0; l < net.num_links(); ++l) {
    const double cap = sim.link_capacity(l);
    if (net.link_is_backbone(l)) {
      ++limited;
      EXPECT_GE(cap, 0.1);
      max_cap = std::max(max_cap, cap);
    } else {
      EXPECT_DOUBLE_EQ(cap, 0.0);
    }
  }
  EXPECT_GT(limited, 0u);
  // The weighted share rule gives heavily-routed links more capacity
  // than the floor.
  EXPECT_GT(max_cap, 0.1);
}

TEST(WormSimulation, UnweightedCapacityIsFlat) {
  Rng rng(3);
  const Network net(graph::make_barabasi_albert(100, 2, rng));
  SimulationConfig cfg = base_config();
  cfg.deployment.edge_router_limited = true;
  cfg.deployment.weight_by_routing_load = false;
  cfg.deployment.base_link_capacity = 3.0;
  WormSimulation sim(net, cfg);
  for (std::size_t l = 0; l < net.num_links(); ++l)
    if (net.link_is_edge(l)) {
      EXPECT_DOUBLE_EQ(sim.link_capacity(l), 3.0);
    }
}

TEST(WormSimulation, HubCapSlowsStar) {
  const Network net = star_net(100);
  SimulationConfig cfg = base_config();
  cfg.max_ticks = 40.0;
  const RunResult fast = WormSimulation(net, cfg).run();
  cfg.deployment.node_forward_cap = {0u, 2u};
  const RunResult slow = WormSimulation(net, cfg).run();
  EXPECT_GT(fast.ever_infected.back_value(),
            slow.ever_infected.back_value() + 0.2);
  EXPECT_GT(slow.total_queued_packet_events, 0u);
}

TEST(WormSimulation, CappedHubDrainsQueueInEmitOrder) {
  // Regression for FIFO fairness: queued packets must leave in the
  // order they were parked, across ticks. On a star whose hub forwards
  // one packet per tick, a sequential-scanning infected hub emits
  // targets c, c+1, c+2, ... — so exactly one leaf is infected per
  // tick, in that cyclic id order. Any reordering in the queue drain
  // breaks the sequence.
  SimulationConfig cfg = base_config();
  cfg.worm.contact_rate = 20.0;  // hub queues many scans per tick
  cfg.worm.selection = TargetSelection::kSequential;
  cfg.deployment.node_forward_cap = {0u, 1u};
  cfg.stop_when_saturated = false;
  cfg.max_ticks = 20.0;

  const Network net = star_net(8);
  // Pick a seed whose single initial infection lands on the hub.
  std::optional<WormSimulation> sim;
  for (std::uint64_t seed = 1; seed < 64; ++seed) {
    cfg.seed = seed;
    sim.emplace(net, cfg);
    if (sim->state(0) == NodeState::kInfected) break;
  }
  ASSERT_EQ(sim->state(0), NodeState::kInfected);

  std::vector<NodeId> infection_order;
  for (int t = 1; t <= 7; ++t) {
    const std::uint64_t before = sim->ever_infected_count();
    sim->step();
    ASSERT_EQ(sim->ever_infected_count(), before + 1)
        << "exactly one release per tick " << t;
    for (NodeId v = 1; v < 8; ++v)
      if (sim->state(v) == NodeState::kInfected &&
          std::find(infection_order.begin(), infection_order.end(), v) ==
              infection_order.end())
        infection_order.push_back(v);
    ASSERT_EQ(infection_order.size(), static_cast<std::size_t>(t));
  }
  // Leaves came up in consecutive cyclic id order (hub id 0 skipped).
  for (std::size_t i = 1; i < infection_order.size(); ++i) {
    NodeId expected = (infection_order[i - 1] + 1) % 8;
    if (expected == 0) expected = 1;
    EXPECT_EQ(infection_order[i], expected) << "position " << i;
  }
}

TEST(WormSimulation, PerfCountersTrackTickLoop) {
  const Network net = star_net(30);
  SimulationConfig cfg = base_config();
  cfg.max_ticks = 12.0;
  cfg.stop_when_saturated = false;
  WormSimulation sim(net, cfg);
  const RunResult result = sim.run();
  EXPECT_EQ(result.perf.ticks, 12u);
  EXPECT_GT(result.perf.packets_forwarded, 0u);
  EXPECT_GE(result.perf.packets_forwarded, result.total_scan_packets);
  EXPECT_GE(result.perf.link_hops, result.perf.packets_forwarded / 2);
  EXPECT_EQ(result.perf.queue_events, result.total_queued_packet_events);
  EXPECT_GE(result.perf.total_seconds(), 0.0);
}

TEST(WormSimulation, ImmunizationRemovesAndStops) {
  const Network net = star_net(100);
  SimulationConfig cfg = base_config();
  cfg.immunization.enabled = true;
  cfg.immunization.rate = 0.2;
  cfg.immunization.start_at_tick = 3.0;
  cfg.max_ticks = 120.0;
  WormSimulation sim(net, cfg);
  const RunResult result = sim.run();
  EXPECT_GE(result.immunization_start_tick, 3.0);
  EXPECT_GT(result.removed.back_value(), 0.9);
  // Active infection dies out once everyone is patched.
  EXPECT_LT(result.active_infected.back_value(), 0.05);
  // Ever-infected is capped below 1 by early patching.
  EXPECT_LT(result.ever_infected.back_value(), 1.0);
}

TEST(WormSimulation, ImmunizationTriggeredByFraction) {
  const Network net = star_net(100);
  SimulationConfig cfg = base_config();
  cfg.immunization.enabled = true;
  cfg.immunization.rate = 0.1;
  cfg.immunization.start_at_infected_fraction = 0.5;
  cfg.max_ticks = 60.0;
  WormSimulation sim(net, cfg);
  const RunResult result = sim.run();
  ASSERT_GE(result.immunization_start_tick, 0.0);
  // At the trigger tick the epidemic had reached ~50%.
  const double at_start =
      result.ever_infected.interpolate(result.immunization_start_tick);
  EXPECT_GE(at_start, 0.45);
}

TEST(WormSimulation, LocalPreferentialStaysLocalFirst) {
  Rng rng(4);
  const Network net(graph::make_subnet_topology(10, 10, rng));
  SimulationConfig cfg = base_config();
  cfg.worm.selection = TargetSelection::kLocalPreferential;
  cfg.worm.local_bias = 0.95;
  cfg.max_ticks = 6.0;
  cfg.stop_when_saturated = false;
  WormSimulation sim(net, cfg);
  const RunResult result = sim.run();
  // The seed subnet is far ahead of the global average early on.
  ASSERT_FALSE(result.seed_subnet_infected.empty());
  EXPECT_GT(result.seed_subnet_infected.back_value(),
            result.ever_infected.back_value() * 2.0);
}

TEST(WormSimulation, SeedSubnetSeriesOnlyOnSubnetTopologies) {
  const Network net = star_net();
  WormSimulation sim(net, base_config());
  EXPECT_TRUE(sim.run().seed_subnet_infected.empty());
}

TEST(WormSimulation, StepAdvancesTick) {
  const Network net = star_net();
  WormSimulation sim(net, base_config());
  sim.step();
  EXPECT_DOUBLE_EQ(sim.tick(), 1.0);
  sim.step();
  EXPECT_DOUBLE_EQ(sim.tick(), 2.0);
}

}  // namespace
}  // namespace dq::sim
