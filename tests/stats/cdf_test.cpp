#include "stats/cdf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dq {
namespace {

TEST(EmpiricalCdf, RejectsEmpty) {
  EXPECT_THROW(EmpiricalCdf(std::vector<double>{}), std::invalid_argument);
}

TEST(EmpiricalCdf, AtOrBelow) {
  const EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at_or_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at_or_below(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at_or_below(100.0), 1.0);
}

TEST(EmpiricalCdf, HandlesDuplicates) {
  const EmpiricalCdf cdf({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.at_or_below(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at_or_below(1.9), 0.0);
}

TEST(EmpiricalCdf, Quantile) {
  const EmpiricalCdf cdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
}

TEST(EmpiricalCdf, QuantileErrors) {
  const EmpiricalCdf cdf({1.0});
  EXPECT_THROW(cdf.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(cdf.quantile(1.5), std::invalid_argument);
}

TEST(EmpiricalCdf, LimitForCoverage) {
  // 999 zeros and one 100: a limit of 0 covers 99.9%.
  std::vector<double> samples(999, 0.0);
  samples.push_back(100.0);
  const EmpiricalCdf cdf(std::move(samples));
  EXPECT_DOUBLE_EQ(cdf.limit_for_coverage(0.999), 0.0);
  EXPECT_DOUBLE_EQ(cdf.limit_for_coverage(1.0), 100.0);
}

TEST(EmpiricalCdf, LimitRoundsUpFractionalValues) {
  const EmpiricalCdf cdf({0.4, 0.4, 2.3});
  EXPECT_DOUBLE_EQ(cdf.limit_for_coverage(0.5), 1.0);  // ceil(0.4)
}

TEST(EmpiricalCdf, MinMaxAndSize) {
  const EmpiricalCdf cdf({5.0, -1.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.min(), -1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
  EXPECT_EQ(cdf.size(), 3u);
}

TEST(EmpiricalCdf, EvaluateGrid) {
  const EmpiricalCdf cdf({1.0, 2.0});
  const std::vector<double> ys = cdf.evaluate({0.0, 1.0, 2.0});
  ASSERT_EQ(ys.size(), 3u);
  EXPECT_DOUBLE_EQ(ys[0], 0.0);
  EXPECT_DOUBLE_EQ(ys[1], 0.5);
  EXPECT_DOUBLE_EQ(ys[2], 1.0);
}

TEST(EmpiricalCdf, MonotoneNonDecreasing) {
  const EmpiricalCdf cdf({3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0});
  double prev = 0.0;
  for (double x = 0.0; x <= 10.0; x += 0.25) {
    const double f = cdf.at_or_below(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

}  // namespace
}  // namespace dq
