#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace dq {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BucketsValues) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 10.0, 2);
  h.add(-1.0);
  h.add(10.0);
  h.add(11.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinBounds) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
  EXPECT_THROW(h.bin_lo(5), std::out_of_range);
}

TEST(Histogram, ToStringHasOneRowPerBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string s = h.to_string();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

TEST(Log2Histogram, BucketBoundaries) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1024);
  EXPECT_EQ(h.count(0), 2u);  // {0,1}
  EXPECT_EQ(h.count(1), 2u);  // [2,3]
  EXPECT_EQ(h.count(2), 1u);  // [4,7]
  EXPECT_EQ(h.count(10), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Log2Histogram, GrowsOnDemand) {
  Log2Histogram h;
  EXPECT_EQ(h.buckets(), 0u);
  h.add(1ULL << 40);
  EXPECT_EQ(h.buckets(), 41u);
}

}  // namespace
}  // namespace dq
