#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace dq {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, ZeroSeedStillWellMixed) {
  Xoshiro256StarStar g(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(g());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformIntUnbiasedRoughly) {
  Rng rng(8);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5.0, n * 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(0.8));
  EXPECT_NEAR(sum / n, 0.8, 0.02);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(14);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ParetoSupport) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i)
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(16);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.1);
}

TEST(Rng, GeometricMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(rng.geometric(0.25));
  // Mean failures before success: (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(18);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0], n * 0.1, n * 0.01);
  EXPECT_NEAR(counts[1], n * 0.3, n * 0.015);
  EXPECT_NEAR(counts[2], n * 0.6, n * 0.015);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(20);
  Rng child = parent.split();
  // Child stream differs from parent continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(ZipfSampler, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(ZipfSampler, RanksInRange) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t r = zipf.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 50u);
  }
}

TEST(ZipfSampler, LowerRanksMoreFrequent) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(22);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(23);
  std::vector<int> counts(5, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (int r = 1; r <= 4; ++r) EXPECT_NEAR(counts[r], n / 4.0, n * 0.01);
}

}  // namespace
}  // namespace dq
