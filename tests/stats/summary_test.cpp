#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.hpp"

namespace dq {
namespace {

TEST(StreamingSummary, EmptyDefaults) {
  StreamingSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingSummary, SingleValue) {
  StreamingSummary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(StreamingSummary, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  StreamingSummary s;
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(StreamingSummary, SampleVarianceUsesNMinusOne) {
  StreamingSummary s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);          // population
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);   // n-1
}

TEST(StreamingSummary, MergeEqualsSequential) {
  Rng rng(1);
  StreamingSummary whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(StreamingSummary, MergeWithEmpty) {
  StreamingSummary a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(Quantile, Median) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, Extremes) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 1.0), 3.0);
}

TEST(Quantile, Interpolates) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Quantile, Errors) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

}  // namespace
}  // namespace dq
