#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dq {
namespace {

TimeSeries make_line() {
  TimeSeries ts;
  ts.push(0.0, 0.0);
  ts.push(1.0, 10.0);
  ts.push(2.0, 20.0);
  return ts;
}

TEST(TimeSeries, PushRequiresIncreasingTimes) {
  TimeSeries ts;
  ts.push(1.0, 5.0);
  EXPECT_THROW(ts.push(1.0, 6.0), std::invalid_argument);
  EXPECT_THROW(ts.push(0.5, 6.0), std::invalid_argument);
  ts.push(2.0, 6.0);
  EXPECT_EQ(ts.size(), 2u);
}

TEST(TimeSeries, Accessors) {
  const TimeSeries ts = make_line();
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.time_at(1), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(1), 10.0);
  EXPECT_DOUBLE_EQ(ts.front_time(), 0.0);
  EXPECT_DOUBLE_EQ(ts.back_time(), 2.0);
  EXPECT_DOUBLE_EQ(ts.back_value(), 20.0);
}

TEST(TimeSeries, InterpolateLinear) {
  const TimeSeries ts = make_line();
  EXPECT_DOUBLE_EQ(ts.interpolate(0.5), 5.0);
  EXPECT_DOUBLE_EQ(ts.interpolate(1.25), 12.5);
}

TEST(TimeSeries, InterpolateClampsOutsideRange) {
  const TimeSeries ts = make_line();
  EXPECT_DOUBLE_EQ(ts.interpolate(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.interpolate(99.0), 20.0);
}

TEST(TimeSeries, InterpolateEmptyThrows) {
  const TimeSeries ts;
  EXPECT_THROW(ts.interpolate(0.0), std::logic_error);
}

TEST(TimeSeries, TimeToReachInterpolates) {
  const TimeSeries ts = make_line();
  EXPECT_DOUBLE_EQ(ts.time_to_reach(15.0), 1.5);
  EXPECT_DOUBLE_EQ(ts.time_to_reach(0.0), 0.0);
}

TEST(TimeSeries, TimeToReachNeverReached) {
  const TimeSeries ts = make_line();
  EXPECT_LT(ts.time_to_reach(21.0), 0.0);
}

TEST(TimeSeries, MaxValue) {
  TimeSeries ts;
  ts.push(0.0, 1.0);
  ts.push(1.0, 5.0);
  ts.push(2.0, 3.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 5.0);
  EXPECT_DOUBLE_EQ(TimeSeries{}.max_value(), 0.0);
}

TEST(TimeSeries, Resample) {
  const TimeSeries ts = make_line();
  const TimeSeries r = ts.resample({0.5, 1.5});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r.value_at(0), 5.0);
  EXPECT_DOUBLE_EQ(r.value_at(1), 15.0);
}

TEST(TimeSeries, AverageOfRuns) {
  TimeSeries a, b;
  a.push(0.0, 0.0);
  a.push(2.0, 4.0);
  b.push(0.0, 2.0);
  b.push(2.0, 2.0);
  const TimeSeries avg = TimeSeries::average({a, b});
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_DOUBLE_EQ(avg.value_at(0), 1.0);
  EXPECT_DOUBLE_EQ(avg.value_at(1), 3.0);
}

TEST(TimeSeries, AverageResamplesOntoFirstGrid) {
  TimeSeries a, b;
  a.push(0.0, 0.0);
  a.push(1.0, 1.0);
  b.push(0.0, 0.0);
  b.push(2.0, 4.0);  // value 2 at t=1 by interpolation
  const TimeSeries avg = TimeSeries::average({a, b});
  EXPECT_DOUBLE_EQ(avg.time_at(1), 1.0);
  EXPECT_DOUBLE_EQ(avg.value_at(1), 1.5);
}

TEST(TimeSeries, AverageEmptyThrows) {
  EXPECT_THROW(TimeSeries::average({}), std::invalid_argument);
}

TEST(TimeSeries, CsvFormat) {
  TimeSeries ts;
  ts.push(0.0, 0.5);
  const std::string csv = ts.to_csv("infected");
  EXPECT_NE(csv.find("time,infected"), std::string::npos);
  EXPECT_NE(csv.find("0,0.5"), std::string::npos);
}

TEST(UniformGrid, EndpointsExact) {
  const std::vector<double> g = uniform_grid(1.0, 3.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 1.0);
  EXPECT_DOUBLE_EQ(g.back(), 3.0);
  EXPECT_DOUBLE_EQ(g[2], 2.0);
}

TEST(UniformGrid, Errors) {
  EXPECT_THROW(uniform_grid(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(uniform_grid(2.0, 1.0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace dq
