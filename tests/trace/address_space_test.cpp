#include "trace/address_space.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

namespace dq::trace {
namespace {

TEST(AddressSpace, Validation) {
  AddressSpace::Config config;
  config.popular_servers = 0;
  EXPECT_THROW(AddressSpace(config, 1), std::invalid_argument);
}

TEST(AddressSpace, DeterministicForSeed) {
  const AddressSpace a({}, 7);
  const AddressSpace b({}, 7);
  Rng ra(1), rb(1);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.popular_server(ra), b.popular_server(rb));
}

TEST(AddressSpace, ServerPopularityIsZipf) {
  AddressSpace::Config config;
  config.popular_servers = 100;
  const AddressSpace space(config, 3);
  Rng rng(5);
  std::unordered_map<IpAddress, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[space.popular_server(rng)];
  // The most popular destination dominates: it should appear far more
  // often than the average (500).
  int max_count = 0;
  for (const auto& [ip, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 3000);
}

TEST(AddressSpace, PoolsAreBounded) {
  AddressSpace::Config config;
  config.popular_servers = 10;
  config.p2p_peers = 20;
  config.client_sources = 30;
  const AddressSpace space(config, 9);
  Rng rng(2);
  std::set<IpAddress> servers, peers, clients;
  for (int i = 0; i < 2000; ++i) {
    servers.insert(space.popular_server(rng));
    peers.insert(space.p2p_peer(rng));
    clients.insert(space.external_client(rng));
  }
  EXPECT_LE(servers.size(), 10u);
  EXPECT_LE(peers.size(), 20u);
  EXPECT_LE(clients.size(), 30u);
}

TEST(AddressSpace, RandomAddressesRarelyRepeat) {
  const AddressSpace space({}, 11);
  Rng rng(4);
  std::set<IpAddress> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(space.random_address(rng));
  EXPECT_GT(seen.size(), 9950u);
}

}  // namespace
}  // namespace dq::trace
