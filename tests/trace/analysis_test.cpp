#include "trace/analysis.hpp"

#include <gtest/gtest.h>

namespace dq::trace {
namespace {

/// Hand-built trace: host 0 contacts 3 distinct IPs in window 0,
/// repeats one of them, then 1 IP in window 2. Window 1 is idle.
Trace tiny_trace() {
  Trace trace;
  trace.add({0.5, EventType::kOutboundContact, 0, 10, 0.0});
  trace.add({1.0, EventType::kOutboundContact, 0, 11, 0.0});
  trace.add({2.0, EventType::kOutboundContact, 0, 10, 0.0});  // repeat
  trace.add({4.0, EventType::kOutboundContact, 0, 12, 0.0});
  trace.add({11.0, EventType::kOutboundContact, 0, 13, 0.0});
  trace.set_host_categories({HostCategory::kNormalClient});
  trace.finalize();
  return trace;
}

ContactRateOptions options(Seconds window = 5.0, bool aggregate = true,
                           Seconds horizon = 15.0) {
  ContactRateOptions o;
  o.window = window;
  o.aggregate = aggregate;
  o.horizon = horizon;
  return o;
}

TEST(WindowCounts, DistinctPerTumblingWindow) {
  const Trace trace = tiny_trace();
  const auto counts = window_counts(trace, {0}, Refinement::kAllDistinct,
                                    options());
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_DOUBLE_EQ(counts[0], 3.0);  // 10, 11, 12 (repeat free)
  EXPECT_DOUBLE_EQ(counts[1], 0.0);  // idle window counted as zero
  EXPECT_DOUBLE_EQ(counts[2], 1.0);
}

TEST(WindowCounts, Validation) {
  const Trace trace = tiny_trace();
  EXPECT_THROW(
      window_counts(trace, {}, Refinement::kAllDistinct, options()),
      std::invalid_argument);
  ContactRateOptions bad = options();
  bad.window = 0.0;
  EXPECT_THROW(window_counts(trace, {0}, Refinement::kAllDistinct, bad),
               std::invalid_argument);
  Trace unfinalized;
  unfinalized.set_host_categories({HostCategory::kNormalClient});
  EXPECT_THROW(window_counts(unfinalized, {0}, Refinement::kAllDistinct,
                             options()),
               std::invalid_argument);
}

TEST(WindowCounts, PriorContactRefinement) {
  Trace trace;
  // Remote 20 calls in first; our replies to it are then free.
  trace.add({0.1, EventType::kInboundContact, 0, 20, 0.0});
  trace.add({0.5, EventType::kOutboundContact, 0, 20, 0.0});
  trace.add({1.0, EventType::kOutboundContact, 0, 21, 0.0});
  trace.set_host_categories({HostCategory::kNormalClient});
  trace.finalize();

  const auto all = window_counts(trace, {0}, Refinement::kAllDistinct,
                                 options(5.0, true, 5.0));
  const auto refined = window_counts(
      trace, {0}, Refinement::kNoPriorContact, options(5.0, true, 5.0));
  EXPECT_DOUBLE_EQ(all[0], 2.0);
  EXPECT_DOUBLE_EQ(refined[0], 1.0);
}

TEST(WindowCounts, DnsRefinementHonorsTtl) {
  Trace trace;
  trace.add({0.1, EventType::kDnsAnswer, 0, 30, 10.0});  // valid to 10.1
  trace.add({0.5, EventType::kOutboundContact, 0, 30, 0.0});  // covered
  trace.add({12.0, EventType::kOutboundContact, 0, 30, 0.0});  // expired
  trace.set_host_categories({HostCategory::kNormalClient});
  trace.finalize();

  const auto counts = window_counts(
      trace, {0}, Refinement::kNoPriorNoDns, options(5.0, true, 15.0));
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_DOUBLE_EQ(counts[0], 0.0);
  EXPECT_DOUBLE_EQ(counts[2], 1.0);
}

TEST(WindowCounts, PerHostModeSeparatesHosts) {
  Trace trace;
  trace.add({0.5, EventType::kOutboundContact, 0, 10, 0.0});
  trace.add({0.6, EventType::kOutboundContact, 1, 11, 0.0});
  trace.add({0.7, EventType::kOutboundContact, 1, 12, 0.0});
  trace.set_host_categories(
      {HostCategory::kNormalClient, HostCategory::kNormalClient});
  trace.finalize();

  const auto counts = window_counts(trace, {0, 1},
                                    Refinement::kAllDistinct,
                                    options(5.0, false, 5.0));
  ASSERT_EQ(counts.size(), 2u);  // one window per host
  EXPECT_DOUBLE_EQ(counts[0], 1.0);
  EXPECT_DOUBLE_EQ(counts[1], 2.0);
}

TEST(WindowCounts, AggregateSharesDnsCacheAcrossHosts) {
  Trace trace;
  trace.add({0.1, EventType::kDnsAnswer, 0, 40, 100.0});
  trace.add({0.5, EventType::kOutboundContact, 1, 40, 0.0});
  trace.set_host_categories(
      {HostCategory::kNormalClient, HostCategory::kNormalClient});
  trace.finalize();

  // Aggregate (edge-router view): host 1 benefits from host 0's lookup.
  const auto agg = window_counts(trace, {0, 1}, Refinement::kNoPriorNoDns,
                                 options(5.0, true, 5.0));
  EXPECT_DOUBLE_EQ(agg[0], 0.0);
  // Per-host view: host 1 never resolved it.
  const auto per = window_counts(trace, {0, 1}, Refinement::kNoPriorNoDns,
                                 options(5.0, false, 5.0));
  EXPECT_DOUBLE_EQ(per[1], 1.0);
}

TEST(WindowCounts, UntrackedHostsIgnored) {
  Trace trace;
  trace.add({0.5, EventType::kOutboundContact, 0, 10, 0.0});
  trace.add({0.6, EventType::kOutboundContact, 1, 11, 0.0});
  trace.set_host_categories(
      {HostCategory::kNormalClient, HostCategory::kWormBlaster});
  trace.finalize();
  const auto counts = window_counts(trace, {0}, Refinement::kAllDistinct,
                                    options(5.0, true, 5.0));
  EXPECT_DOUBLE_EQ(counts[0], 1.0);
}

TEST(ContactRateCdf, EndToEnd) {
  const Trace trace = tiny_trace();
  const EmpiricalCdf cdf = contact_rate_cdf(
      trace, {0}, Refinement::kAllDistinct, options());
  EXPECT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.at_or_below(0.0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(cdf.at_or_below(3.0), 1.0);
  EXPECT_DOUBLE_EQ(
      rate_limit_for_coverage(trace, {0}, Refinement::kAllDistinct,
                              options(), 1.0),
      3.0);
}

TEST(EvaluateLimit, ClippingMath) {
  const std::vector<double> counts = {0.0, 2.0, 5.0, 10.0};
  const ImpactReport report = evaluate_limit(counts, 4.0);
  EXPECT_DOUBLE_EQ(report.fraction_windows_clipped, 0.5);
  EXPECT_DOUBLE_EQ(report.fraction_contacts_blocked, (1.0 + 6.0) / 17.0);
  EXPECT_DOUBLE_EQ(report.mean_count, 17.0 / 4.0);
  EXPECT_DOUBLE_EQ(report.max_count, 10.0);
  EXPECT_THROW(evaluate_limit({}, 4.0), std::invalid_argument);
  EXPECT_THROW(evaluate_limit(counts, -1.0), std::invalid_argument);
}

TEST(ReplayWilliamson, DelaysScansNotRepeats) {
  Trace trace;
  // Burst of 10 new destinations at t=0 from one host.
  for (IpAddress ip = 1; ip <= 10; ++ip)
    trace.add({0.0, EventType::kOutboundContact, 0, ip, 0.0});
  trace.set_host_categories({HostCategory::kWormBlaster});
  trace.finalize();

  ratelimit::WilliamsonConfig config;
  config.working_set_size = 5;
  config.clock_period = 1.0;
  config.queue_cap = 0;
  const ThrottleReplayReport report =
      replay_williamson(trace, {0}, config);
  EXPECT_EQ(report.contacts, 10u);
  EXPECT_EQ(report.allowed, 1u);  // idle slot
  EXPECT_EQ(report.delayed, 9u);
  EXPECT_GT(report.mean_delay, 1.0);
  EXPECT_GT(report.max_delay, 8.0);
}

TEST(ReplayDnsThrottle, BlocksUnknownBeyondBudget) {
  Trace trace;
  trace.add({0.0, EventType::kDnsAnswer, 0, 100, 600.0});
  trace.add({0.1, EventType::kOutboundContact, 0, 100, 0.0});  // free
  for (IpAddress ip = 1; ip <= 10; ++ip)
    trace.add({1.0 + ip * 0.01, EventType::kOutboundContact, 0, ip, 0.0});
  trace.set_host_categories({HostCategory::kWormBlaster});
  trace.finalize();

  ratelimit::DnsThrottleConfig config;
  config.window = 60.0;
  config.limit = 6;
  const ThrottleReplayReport report =
      replay_dns_throttle(trace, {0}, config);
  EXPECT_EQ(report.contacts, 11u);
  EXPECT_EQ(report.allowed, 7u);  // 1 DNS-covered + 6 budget
  EXPECT_EQ(report.dropped, 4u);
}

TEST(ReplayDnsThrottle, PerHostIsolation) {
  // Two hosts each get their own 6-per-minute budget.
  Trace trace;
  for (IpAddress ip = 1; ip <= 8; ++ip) {
    trace.add({ip * 0.01, EventType::kOutboundContact, 0, ip, 0.0});
    trace.add({ip * 0.01, EventType::kOutboundContact, 1, 100 + ip, 0.0});
  }
  trace.set_host_categories(
      {HostCategory::kWormBlaster, HostCategory::kWormBlaster});
  trace.finalize();
  const ThrottleReplayReport report =
      replay_dns_throttle(trace, {0, 1}, ratelimit::DnsThrottleConfig{});
  EXPECT_EQ(report.allowed, 12u);
  EXPECT_EQ(report.dropped, 4u);
}

}  // namespace
}  // namespace dq::trace
