// Integration: the synthetic department trace reproduces the paper's
// Section 7 structure — worm traffic orders of magnitude above normal,
// refinements shrinking legitimate counts, limits in the reported
// ballparks. Uses a 1-hour trace to keep the suite fast; the bench
// binaries measure the 4-hour version.
#include <gtest/gtest.h>

#include "trace/analysis.hpp"
#include "trace/department.hpp"

namespace dq::trace {
namespace {

const Trace& department() {
  static const Trace trace = [] {
    DepartmentConfig config;
    config.duration = 3600.0;
    return generate_department_trace(config, 2026);
  }();
  return trace;
}

std::vector<HostId> worms(const Trace& trace) {
  auto hosts = trace.hosts_in(HostCategory::kWormBlaster);
  const auto welchia = trace.hosts_in(HostCategory::kWormWelchia);
  hosts.insert(hosts.end(), welchia.begin(), welchia.end());
  return hosts;
}

ContactRateOptions aggregate_5s() {
  ContactRateOptions o;
  o.window = 5.0;
  o.aggregate = true;
  return o;
}

TEST(Calibration, CategoryMeansAreOrdered) {
  const Trace& trace = department();
  auto mean_count = [&](const std::vector<HostId>& hosts) {
    const auto counts = window_counts(trace, hosts,
                                      Refinement::kAllDistinct,
                                      aggregate_5s());
    double sum = 0.0;
    for (double c : counts) sum += c;
    return sum / static_cast<double>(counts.size());
  };
  const double normal = mean_count(
      trace.hosts_in(HostCategory::kNormalClient));
  const double p2p = mean_count(trace.hosts_in(HostCategory::kP2P));
  const double worm = mean_count(worms(trace));
  // "P2P and server systems are less well-behaved than normal systems
  // and less ill-behaved than worm-infected systems."
  EXPECT_GT(p2p, normal);
  EXPECT_GT(worm, p2p * 3.0);
}

TEST(Calibration, RefinementsShrinkNormalTraffic) {
  const Trace& trace = department();
  const auto normals = trace.hosts_in(HostCategory::kNormalClient);
  const double all = rate_limit_for_coverage(
      trace, normals, Refinement::kAllDistinct, aggregate_5s(), 0.999);
  const double no_prior = rate_limit_for_coverage(
      trace, normals, Refinement::kNoPriorContact, aggregate_5s(), 0.999);
  const double no_dns = rate_limit_for_coverage(
      trace, normals, Refinement::kNoPriorNoDns, aggregate_5s(), 0.999);
  EXPECT_GE(all, no_prior);
  EXPECT_GE(no_prior, no_dns);
  // Ganger et al.: counting only non-DNS contacts cuts the rate by
  // another factor of 2-4.
  EXPECT_GE(all / std::max(1.0, no_dns), 2.0);
}

TEST(Calibration, AggregateLimitsNearPaperValues) {
  const Trace& trace = department();
  const auto normals = trace.hosts_in(HostCategory::kNormalClient);
  const double all = rate_limit_for_coverage(
      trace, normals, Refinement::kAllDistinct, aggregate_5s(), 0.999);
  // Paper: 16 per 5 s. Accept a band around it for the synthetic trace.
  EXPECT_GE(all, 8.0);
  EXPECT_LE(all, 40.0);
}

TEST(Calibration, WormRefinementLinesNearlyCoincide) {
  // Figure 9(b): worm traffic spikes all three metrics — the
  // refinements barely reduce its counts.
  const Trace& trace = department();
  const auto infected = worms(trace);
  const auto all = window_counts(trace, infected,
                                 Refinement::kAllDistinct, aggregate_5s());
  const auto refined = window_counts(
      trace, infected, Refinement::kNoPriorNoDns, aggregate_5s());
  double sum_all = 0.0, sum_refined = 0.0;
  for (double c : all) sum_all += c;
  for (double c : refined) sum_refined += c;
  ASSERT_GT(sum_all, 0.0);
  EXPECT_GT(sum_refined / sum_all, 0.95);
}

TEST(Calibration, EdgeLimitClipsWormsNotClients) {
  const Trace& trace = department();
  const auto normals = trace.hosts_in(HostCategory::kNormalClient);
  const auto infected = worms(trace);
  const auto normal_counts = window_counts(
      trace, normals, Refinement::kAllDistinct, aggregate_5s());
  const auto worm_counts = window_counts(
      trace, infected, Refinement::kAllDistinct, aggregate_5s());
  const ImpactReport normal_impact = evaluate_limit(normal_counts, 16.0);
  const ImpactReport worm_impact = evaluate_limit(worm_counts, 16.0);
  EXPECT_LT(normal_impact.fraction_windows_clipped, 0.05);
  EXPECT_GT(worm_impact.fraction_windows_clipped, 0.5);
}

TEST(Calibration, ThrottlesSlowWormsHard) {
  const Trace& trace = department();
  const auto infected = worms(trace);
  const ThrottleReplayReport dns = replay_dns_throttle(
      trace, infected, ratelimit::DnsThrottleConfig{});
  ASSERT_GT(dns.contacts, 1000u);
  // Nearly all worm scans exceed the 6-per-minute unknown budget.
  EXPECT_GT(static_cast<double>(dns.dropped) /
                static_cast<double>(dns.contacts),
            0.8);

  const auto normals = trace.hosts_in(HostCategory::kNormalClient);
  const ThrottleReplayReport legit = replay_dns_throttle(
      trace, normals, ratelimit::DnsThrottleConfig{});
  EXPECT_LT(static_cast<double>(legit.dropped) /
                std::max<double>(1.0, static_cast<double>(legit.contacts)),
            0.2);
}

TEST(Calibration, LongerWindowsAllowLowerLongTermRates) {
  // Section 7: "longer windows accommodate lower long-term rate
  // limits" — per-second-of-window, the 60 s limit is far below 60x
  // the 1 s limit.
  const Trace& trace = department();
  const auto normals = trace.hosts_in(HostCategory::kNormalClient);
  ContactRateOptions w1 = aggregate_5s();
  w1.window = 1.0;
  ContactRateOptions w60 = aggregate_5s();
  w60.window = 60.0;
  const double limit1 = rate_limit_for_coverage(
      trace, normals, Refinement::kNoPriorNoDns, w1, 0.999);
  const double limit60 = rate_limit_for_coverage(
      trace, normals, Refinement::kNoPriorNoDns, w60, 0.999);
  EXPECT_LT(limit60, 60.0 * std::max(1.0, limit1));
}

}  // namespace
}  // namespace dq::trace
