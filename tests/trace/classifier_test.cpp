#include "trace/classifier.hpp"

#include <gtest/gtest.h>

#include "trace/department.hpp"

namespace dq::trace {
namespace {

// ---- feature extraction on crafted traces ----

TEST(Features, CountsAndRates) {
  Trace trace;
  trace.add({0.5, EventType::kDnsAnswer, 0, 10, 100.0});
  trace.add({1.0, EventType::kOutboundContact, 0, 10, 0.0});  // DNS-covered
  trace.add({2.0, EventType::kOutboundContact, 0, 11, 0.0});  // fresh
  trace.add({3.0, EventType::kOutboundContact, 0, 11, 0.0});  // repeat
  trace.add({4.0, EventType::kInboundContact, 0, 12, 0.0});
  trace.add({5.0, EventType::kOutboundContact, 0, 12, 0.0});  // known peer
  trace.add({10.0, EventType::kOutboundContact, 1, 50, 0.0});
  trace.set_host_categories(
      {HostCategory::kNormalClient, HostCategory::kNormalClient});
  trace.finalize();

  const auto features = extract_features(trace);
  ASSERT_EQ(features.size(), 2u);
  const HostFeatures& f = features[0];
  EXPECT_EQ(f.outbound_contacts, 4u);
  EXPECT_EQ(f.inbound_contacts, 1u);
  EXPECT_EQ(f.dns_answers, 1u);
  EXPECT_EQ(f.dns_covered_contacts, 1u);
  EXPECT_EQ(f.fresh_destination_contacts, 1u);  // only dest 11
  EXPECT_EQ(f.distinct_destinations, 3u);
  EXPECT_DOUBLE_EQ(f.dns_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(f.freshness(), 0.25);
  EXPECT_EQ(features[1].outbound_contacts, 1u);
}

TEST(Features, PeakPerMinuteUsesSlidingWindow) {
  Trace trace;
  // 5 distinct within one minute, then a gap, then 2 more.
  for (IpAddress ip = 1; ip <= 5; ++ip)
    trace.add({ip * 5.0, EventType::kOutboundContact, 0, ip, 0.0});
  trace.add({200.0, EventType::kOutboundContact, 0, 10, 0.0});
  trace.add({201.0, EventType::kOutboundContact, 0, 11, 0.0});
  trace.set_host_categories({HostCategory::kNormalClient});
  trace.finalize();
  const auto features = extract_features(trace);
  EXPECT_EQ(features[0].peak_distinct_per_minute, 5u);
}

TEST(Features, RequiresFinalizedTrace) {
  Trace trace;
  trace.set_host_categories({HostCategory::kNormalClient});
  EXPECT_THROW(extract_features(trace), std::invalid_argument);
}

// ---- rule behavior on synthetic feature vectors ----

HostFeatures base_features() {
  HostFeatures f;
  f.duration = 3600.0;
  f.outbound_contacts = 40;
  f.distinct_destinations = 20;
  return f;
}

TEST(ClassifyHost, QuietHostIsNormal) {
  EXPECT_EQ(classify_host(base_features()),
            HostCategory::kNormalClient);
}

TEST(ClassifyHost, ScanPeakMakesWorm) {
  HostFeatures f = base_features();
  f.peak_distinct_per_minute = 500;
  EXPECT_EQ(classify_host(f), HostCategory::kWormBlaster);
  f.peak_distinct_per_minute = 5000;
  EXPECT_EQ(classify_host(f), HostCategory::kWormWelchia);
}

TEST(ClassifyHost, SustainedFreshScanningMakesWorm) {
  HostFeatures f = base_features();
  f.outbound_contacts = 7200;  // 2/s
  f.fresh_destination_contacts = 7000;
  EXPECT_EQ(classify_host(f), HostCategory::kWormBlaster);
}

TEST(ClassifyHost, InboundDominanceMakesServer) {
  HostFeatures f = base_features();
  f.inbound_contacts = 800;
  EXPECT_EQ(classify_host(f), HostCategory::kServer);
}

TEST(ClassifyHost, FanoutWithoutDnsMakesP2p) {
  HostFeatures f = base_features();
  f.outbound_contacts = 1200;  // 0.33/s
  f.distinct_destinations = 300;
  f.dns_covered_contacts = 100;  // ~8%
  EXPECT_EQ(classify_host(f), HostCategory::kP2P);
}

TEST(ClassifyHost, DnsHeavyFanoutStaysNormal) {
  HostFeatures f = base_features();
  f.outbound_contacts = 1200;
  f.distinct_destinations = 300;
  f.dns_covered_contacts = 1100;
  EXPECT_EQ(classify_host(f), HostCategory::kNormalClient);
}

// ---- end-to-end on the synthetic department ----

TEST(Classifier, RecoversTheDepartmentPartition) {
  DepartmentConfig config;
  config.normal_clients = 120;
  config.servers = 6;
  config.p2p_clients = 8;
  config.blaster_hosts = 6;
  config.welchia_hosts = 6;
  config.duration = 3.0 * 3600.0;  // long enough for worm epochs
  const Trace department = generate_department_trace(config, 314159);

  const std::vector<HostCategory> predicted = classify_hosts(department);
  const ClassifierReport report =
      evaluate_classifier(department, predicted);

  EXPECT_GE(report.overall_accuracy, 0.85) << report.to_string();
  EXPECT_GE(report.worm_recall, 0.9) << report.to_string();
  EXPECT_GE(report.worm_precision, 0.9) << report.to_string();
}

TEST(Classifier, ReportRendersConfusionMatrix) {
  DepartmentConfig config;
  config.normal_clients = 10;
  config.servers = 1;
  config.p2p_clients = 1;
  config.blaster_hosts = 1;
  config.welchia_hosts = 1;
  config.duration = 1800.0;
  const Trace department = generate_department_trace(config, 7);
  const ClassifierReport report =
      evaluate_classifier(department, classify_hosts(department));
  const std::string text = report.to_string();
  EXPECT_NE(text.find("confusion"), std::string::npos);
  EXPECT_NE(text.find("worm recall"), std::string::npos);
}

TEST(Classifier, SizeMismatchThrows) {
  DepartmentConfig config;
  config.normal_clients = 3;
  config.servers = 0;
  config.p2p_clients = 0;
  config.blaster_hosts = 0;
  config.welchia_hosts = 0;
  config.duration = 60.0;
  const Trace department = generate_department_trace(config, 7);
  EXPECT_THROW(evaluate_classifier(department, {}), std::invalid_argument);
}

}  // namespace
}  // namespace dq::trace
