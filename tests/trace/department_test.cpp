#include "trace/department.hpp"

#include <gtest/gtest.h>

namespace dq::trace {
namespace {

DepartmentConfig small_config() {
  DepartmentConfig config;
  config.normal_clients = 20;
  config.servers = 2;
  config.p2p_clients = 3;
  config.blaster_hosts = 2;
  config.welchia_hosts = 2;
  config.duration = 600.0;
  return config;
}

TEST(Department, Validation) {
  DepartmentConfig config = small_config();
  config.duration = 0.0;
  EXPECT_THROW(generate_department_trace(config, 1), std::invalid_argument);
  config = small_config();
  config.normal_clients = config.servers = config.p2p_clients =
      config.blaster_hosts = config.welchia_hosts = 0;
  EXPECT_THROW(generate_department_trace(config, 1), std::invalid_argument);
}

TEST(Department, CensusMatchesConfig) {
  const Trace trace = generate_department_trace(small_config(), 1);
  EXPECT_EQ(trace.num_hosts(), 29u);
  EXPECT_EQ(trace.hosts_in(HostCategory::kNormalClient).size(), 20u);
  EXPECT_EQ(trace.hosts_in(HostCategory::kServer).size(), 2u);
  EXPECT_EQ(trace.hosts_in(HostCategory::kP2P).size(), 3u);
  EXPECT_EQ(trace.hosts_in(HostCategory::kWormBlaster).size(), 2u);
  EXPECT_EQ(trace.hosts_in(HostCategory::kWormWelchia).size(), 2u);
}

TEST(Department, PaperCensusByDefault) {
  const DepartmentConfig config;
  EXPECT_EQ(total_hosts(config), 1128u);  // the ECE subnet's size
  EXPECT_EQ(config.normal_clients, 999u);
  EXPECT_EQ(config.servers, 17u);
  EXPECT_EQ(config.p2p_clients, 33u);
  EXPECT_EQ(config.blaster_hosts + config.welchia_hosts, 79u);
}

TEST(Department, FinalizedAndSorted) {
  const Trace trace = generate_department_trace(small_config(), 2);
  EXPECT_TRUE(trace.finalized());
  for (std::size_t i = 1; i < trace.events().size(); ++i)
    EXPECT_LE(trace.events()[i - 1].time, trace.events()[i].time);
}

TEST(Department, EventsReferenceValidHosts) {
  const Trace trace = generate_department_trace(small_config(), 3);
  for (const TraceEvent& e : trace.events())
    EXPECT_LT(e.host, trace.num_hosts());
}

TEST(Department, DeterministicForSeed) {
  const Trace a = generate_department_trace(small_config(), 7);
  const Trace b = generate_department_trace(small_config(), 7);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); i += 97)
    EXPECT_EQ(a.events()[i].remote, b.events()[i].remote);
}

TEST(Department, SeedsChangeTheTraffic) {
  const Trace a = generate_department_trace(small_config(), 7);
  const Trace b = generate_department_trace(small_config(), 8);
  EXPECT_NE(a.events().size(), b.events().size());
}

}  // namespace
}  // namespace dq::trace
