#include "trace/host_models.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dq::trace {
namespace {

const AddressSpace& shared_space() {
  static const AddressSpace space({}, 99);
  return space;
}

Trace generate(const HostModel& model, Seconds duration,
               std::uint64_t seed = 1) {
  Trace trace;
  Rng rng(seed);
  model.generate(rng, 0, duration, trace);
  trace.set_host_categories({model.category()});
  trace.finalize();
  return trace;
}

std::size_t outbound_count(const Trace& trace) {
  std::size_t n = 0;
  for (const TraceEvent& e : trace.events())
    n += e.type == EventType::kOutboundContact;
  return n;
}

TEST(HostModels, EventsWithinDuration) {
  const NormalClientModel model(shared_space(), {});
  const Trace trace = generate(model, 3600.0);
  for (const TraceEvent& e : trace.events()) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LT(e.time, 3600.0 + 5.0);  // repeat packets may trail slightly
  }
}

TEST(HostModels, NormalClientHasDnsBeforeSomeContacts) {
  const NormalClientModel model(shared_space(), {});
  const Trace trace = generate(model, 24.0 * 3600.0);
  std::size_t dns = 0, outbound = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.type == EventType::kDnsAnswer) {
      ++dns;
      EXPECT_GT(e.dns_ttl, 0.0);
    }
    outbound += e.type == EventType::kOutboundContact;
  }
  EXPECT_GT(outbound, 0u);
  EXPECT_GT(dns, 0u);
  // Roughly the configured dns_fraction of sessions resolve first.
  EXPECT_GT(static_cast<double>(dns) / static_cast<double>(outbound), 0.1);
}

TEST(HostModels, ServerIsInboundDominated) {
  const ServerModel model(shared_space(), {});
  const Trace trace = generate(model, 3600.0);
  std::size_t inbound = 0, outbound = 0;
  for (const TraceEvent& e : trace.events()) {
    inbound += e.type == EventType::kInboundContact;
    outbound += e.type == EventType::kOutboundContact;
  }
  EXPECT_GT(inbound, outbound * 5);
}

TEST(HostModels, P2PContactsMostlyWithoutDns) {
  const P2PModel model(shared_space(), {});
  const Trace trace = generate(model, 3600.0);
  std::size_t dns = 0, outbound = 0;
  for (const TraceEvent& e : trace.events()) {
    dns += e.type == EventType::kDnsAnswer;
    outbound += e.type == EventType::kOutboundContact;
  }
  EXPECT_GT(outbound, 500u);  // sustained gossip
  EXPECT_LT(dns, outbound / 2);
}

TEST(HostModels, WormsScanFarMoreThanClients) {
  const NormalClientModel normal(shared_space(), {});
  const BlasterModel blaster(shared_space(), {});
  const WelchiaModel welchia(shared_space(), {});
  const Seconds day = 24.0 * 3600.0;
  const std::size_t normal_contacts = outbound_count(generate(normal, day));
  const std::size_t blaster_contacts =
      outbound_count(generate(blaster, day));
  const std::size_t welchia_contacts =
      outbound_count(generate(welchia, day));
  EXPECT_GT(blaster_contacts, normal_contacts * 20);
  EXPECT_GT(welchia_contacts, normal_contacts * 20);
}

TEST(HostModels, WelchiaPeaksAboveBlaster) {
  // Footnote 1: Welchia's peak scanning rate is an order of magnitude
  // above Blaster's. Compare the busiest 60-second windows.
  const BlasterModel blaster(shared_space(), {});
  const WelchiaModel welchia(shared_space(), {});
  const Seconds day = 24.0 * 3600.0;
  auto peak_per_minute = [](const Trace& trace) {
    std::size_t best = 0;
    std::vector<std::size_t> counts(
        static_cast<std::size_t>(trace.duration() / 60.0) + 1, 0);
    for (const TraceEvent& e : trace.events())
      if (e.type == EventType::kOutboundContact)
        ++counts[static_cast<std::size_t>(e.time / 60.0)];
    for (std::size_t c : counts) best = std::max(best, c);
    return best;
  };
  const std::size_t blaster_peak = peak_per_minute(generate(blaster, day));
  const std::size_t welchia_peak = peak_per_minute(generate(welchia, day));
  EXPECT_GT(welchia_peak, blaster_peak * 4);
  // Calibration bands around the paper's numbers (671 and 7068).
  EXPECT_GT(blaster_peak, 300u);
  EXPECT_LT(blaster_peak, 1200u);
  EXPECT_GT(welchia_peak, 3000u);
  EXPECT_LT(welchia_peak, 9000u);
}

TEST(HostModels, DiurnalCycleGatesSessions) {
  NormalClientConfig cfg;
  cfg.session_rate = 1.0 / 20.0;  // busy host so the test is cheap
  cfg.diurnal_period = 1000.0;
  cfg.diurnal_active_fraction = 0.3;
  cfg.inbound_rate = 0.0;  // inbound is not gated; exclude it
  const NormalClientModel model(shared_space(), cfg);
  const Trace trace = generate(model, 10000.0, 3);

  // All outbound activity falls inside ~30% of each period (plus the
  // few seconds a session straddles a boundary). Recover the window by
  // histogramming into 10 bins per period: busy bins must cover no
  // more than ~half the cycle.
  std::size_t total = 0;
  std::vector<std::size_t> bins(10, 0);
  for (const TraceEvent& e : trace.events()) {
    if (e.type != EventType::kOutboundContact) continue;
    ++total;
    ++bins[static_cast<std::size_t>(std::fmod(e.time, 1000.0) / 100.0)];
  }
  ASSERT_GT(total, 100u);
  std::size_t busy_bins = 0;
  for (std::size_t b : bins)
    if (b > total / 50) ++busy_bins;
  EXPECT_LE(busy_bins, 5u);
}

TEST(HostModels, DiurnalOffByDefault) {
  const NormalClientConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.diurnal_period, 0.0);
}

TEST(HostModels, DeterministicForSeed) {
  const BlasterModel model(shared_space(), {});
  const Trace a = generate(model, 3600.0, 5);
  const Trace b = generate(model, 3600.0, 5);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].remote, b.events()[i].remote);
  }
}

}  // namespace
}  // namespace dq::trace
