#include "trace/quarantine_replay.hpp"

#include <gtest/gtest.h>

#include "trace/department.hpp"

namespace dq::trace {
namespace {

/// Failure-ratio-only detector with the trace-domain thresholds: 10+
/// first-contact destinations in a 5 s window, 90% of them blind.
quarantine::QuarantineConfig replay_config() {
  quarantine::QuarantineConfig c;
  c.enabled = true;
  c.detector.window = 5.0;
  c.detector.contact_rate_threshold = 0.0;
  c.detector.distinct_dest_threshold = 0.0;
  c.detector.failure_ratio_threshold = 0.9;
  c.detector.failure_min_attempts = 10;
  c.policy.base_period = 300.0;
  c.policy.escalation = 4.0;
  c.policy.max_period = 3600.0;
  return c;
}

TraceEvent outbound(Seconds t, HostId host, IpAddress remote) {
  return {t, EventType::kOutboundContact, host, remote, 0.0};
}

TEST(QuarantineReplay, ScannerQuarantinedCoveredTrafficIsNot) {
  // Host 0 talks to DNS-resolved and previously-inbound peers; host 1
  // blasts 12 blind first-contacts in one window.
  Trace trace;
  trace.add({1.0, EventType::kDnsAnswer, 0, 500, 60.0});
  trace.add(outbound(2.0, 0, 500));
  trace.add({3.0, EventType::kInboundContact, 0, 600, 0.0});
  trace.add(outbound(4.0, 0, 600));
  for (int i = 0; i < 12; ++i)
    trace.add(outbound(10.0, 1, static_cast<IpAddress>(1000 + i)));
  // A late benign event extends the trace, so the scanner's open
  // quarantine interval accrues time.
  trace.add(outbound(50.0, 0, 500));
  trace.finalize();
  trace.set_host_categories(
      {HostCategory::kNormalClient, HostCategory::kWormBlaster});

  const QuarantineReplayReport report =
      replay_quarantine(trace, replay_config());
  EXPECT_EQ(report.events_processed, trace.events().size());
  EXPECT_EQ(report.overall.target_hosts, 1u);
  EXPECT_EQ(report.overall.benign_hosts, 1u);
  EXPECT_DOUBLE_EQ(report.overall.detection_rate, 1.0);
  // First outbound and quarantine both happen at t=10.
  EXPECT_DOUBLE_EQ(report.overall.mean_detection_latency, 0.0);
  EXPECT_DOUBLE_EQ(report.overall.false_positive_rate, 0.0);

  ASSERT_EQ(report.categories.size(), 2u);
  const CategoryQuarantineStats* blaster = nullptr;
  for (const auto& c : report.categories)
    if (c.category == HostCategory::kWormBlaster) blaster = &c;
  ASSERT_NE(blaster, nullptr);
  EXPECT_EQ(blaster->hosts, 1u);
  EXPECT_EQ(blaster->quarantined_hosts, 1u);
  EXPECT_DOUBLE_EQ(blaster->mean_detection_latency, 0.0);
  // The open quarantine interval counts up to the end of the trace
  // (quarantined at t=10, trace ends at t=50).
  EXPECT_DOUBLE_EQ(blaster->total_quarantine_time, 40.0);
}

TEST(QuarantineReplay, BlindBenignBurstPaysTheBoundedPenalty) {
  // The first-contact proxy has no oracle: a benign host making 12
  // blind contacts in a window is indistinguishable from a scanner and
  // is quarantined — the design answer is that the penalty is one
  // bounded period, not permanence.
  Trace trace;
  for (int i = 0; i < 12; ++i)
    trace.add(outbound(10.0, 0, static_cast<IpAddress>(2000 + i)));
  // Identical burst, but every destination was DNS-resolved first.
  for (int i = 0; i < 12; ++i)
    trace.add({5.0, EventType::kDnsAnswer, 1,
               static_cast<IpAddress>(3000 + i), 600.0});
  for (int i = 0; i < 12; ++i)
    trace.add(outbound(10.0, 1, static_cast<IpAddress>(3000 + i)));
  trace.finalize();
  trace.set_host_categories(
      {HostCategory::kNormalClient, HostCategory::kNormalClient});

  const QuarantineReplayReport report =
      replay_quarantine(trace, replay_config());
  EXPECT_DOUBLE_EQ(report.overall.false_positive_hosts, 1.0);
  EXPECT_DOUBLE_EQ(report.overall.false_positive_rate, 0.5);
  // The blind host serves at most one base period.
  EXPECT_LE(report.overall.benign_quarantine_time,
            replay_config().policy.base_period);
}

TEST(QuarantineReplay, RejectsBadInput) {
  const quarantine::QuarantineConfig cfg = replay_config();
  Trace unfinalized;
  unfinalized.add(outbound(1.0, 0, 1));
  unfinalized.set_host_categories({HostCategory::kNormalClient});
  EXPECT_THROW(replay_quarantine(unfinalized, cfg), std::invalid_argument);

  Trace no_census;
  no_census.add(outbound(1.0, 0, 1));
  no_census.finalize();
  EXPECT_THROW(replay_quarantine(no_census, cfg), std::invalid_argument);

  Trace out_of_range;
  out_of_range.add(outbound(1.0, 7, 1));  // host 7, census of 1
  out_of_range.finalize();
  out_of_range.set_host_categories({HostCategory::kNormalClient});
  EXPECT_THROW(replay_quarantine(out_of_range, cfg), std::invalid_argument);
}

TEST(QuarantineReplay, DepartmentTraceEndToEnd) {
  DepartmentConfig dept;
  dept.normal_clients = 30;
  dept.servers = 2;
  dept.p2p_clients = 2;
  dept.blaster_hosts = 5;
  dept.welchia_hosts = 5;
  dept.duration = 600.0;
  const Trace trace = generate_department_trace(dept, 21);

  const QuarantineReplayReport report =
      replay_quarantine(trace, replay_config());
  EXPECT_GT(report.events_processed, 0u);
  EXPECT_EQ(report.overall.benign_hosts + report.overall.target_hosts, 44u);

  std::size_t census = 0;
  for (const auto& c : report.categories) census += c.hosts;
  EXPECT_EQ(census, 44u);
  // The tuned trace thresholds keep ordinary hosts almost entirely out
  // of quarantine even on a live department trace.
  EXPECT_LE(report.overall.false_positive_rate, 0.2);
}

TEST(QuarantineReplay, ObsSinkRecordsStrikesAndCounters) {
  Trace trace;
  for (int i = 0; i < 12; ++i)
    trace.add(outbound(10.0, 1, static_cast<IpAddress>(1000 + i)));
  trace.add(outbound(50.0, 0, 500));
  trace.finalize();
  trace.set_host_categories(
      {HostCategory::kNormalClient, HostCategory::kWormBlaster});

  obs::MultiRunSink sink(1);
  const QuarantineReplayReport report =
      replay_quarantine(trace, replay_config(), sink.run_sink(0));
  // Instrumented and plain replays agree — the sink is observe-only.
  const QuarantineReplayReport plain =
      replay_quarantine(trace, replay_config());
  EXPECT_EQ(report.events_processed, plain.events_processed);
  EXPECT_DOUBLE_EQ(report.overall.detection_rate,
                   plain.overall.detection_rate);

  const campaign::JsonValue snap = sink.metrics().snapshot();
  const campaign::JsonValue* counters = snap.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("replay.events_processed")->as_uint(),
            report.events_processed);
  EXPECT_EQ(counters->find("replay.hosts")->as_uint(), 2u);
  EXPECT_EQ(counters->find("quarantine.events")->as_uint(), 1u);

  // The scanner's strike and suspected→quarantined transition are in
  // the event stream, stamped with trace seconds.
  bool saw_strike = false, saw_quarantine = false;
  for (const obs::Event& e : sink.ring(0).events()) {
    if (e.kind == obs::EventKind::kDetectorStrike && e.id == 1) {
      saw_strike = true;
      EXPECT_DOUBLE_EQ(e.time, 10.0);
    }
    if (e.kind == obs::EventKind::kQuarantineTransition && e.id == 1 &&
        static_cast<obs::QState>(e.b) == obs::QState::kQuarantined)
      saw_quarantine = true;
  }
  EXPECT_TRUE(saw_strike);
  EXPECT_TRUE(saw_quarantine);
}

}  // namespace
}  // namespace dq::trace
