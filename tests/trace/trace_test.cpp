#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace dq::trace {
namespace {

TEST(Trace, FinalizeSortsByTime) {
  Trace trace;
  trace.add({5.0, EventType::kOutboundContact, 0, 1, 0.0});
  trace.add({1.0, EventType::kOutboundContact, 0, 2, 0.0});
  trace.add({3.0, EventType::kDnsAnswer, 0, 3, 60.0});
  EXPECT_FALSE(trace.finalized());
  trace.finalize();
  EXPECT_TRUE(trace.finalized());
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_DOUBLE_EQ(trace.events()[0].time, 1.0);
  EXPECT_DOUBLE_EQ(trace.events()[1].time, 3.0);
  EXPECT_DOUBLE_EQ(trace.events()[2].time, 5.0);
}

TEST(Trace, StableSortPreservesEqualTimeOrder) {
  Trace trace;
  trace.add({1.0, EventType::kDnsAnswer, 0, 10, 60.0});
  trace.add({1.0, EventType::kOutboundContact, 0, 10, 0.0});
  trace.finalize();
  EXPECT_EQ(trace.events()[0].type, EventType::kDnsAnswer);
  EXPECT_EQ(trace.events()[1].type, EventType::kOutboundContact);
}

TEST(Trace, HostCategories) {
  Trace trace;
  trace.set_host_categories({HostCategory::kNormalClient,
                             HostCategory::kServer,
                             HostCategory::kNormalClient,
                             HostCategory::kWormBlaster});
  EXPECT_EQ(trace.num_hosts(), 4u);
  const auto normals = trace.hosts_in(HostCategory::kNormalClient);
  ASSERT_EQ(normals.size(), 2u);
  EXPECT_EQ(normals[0], 0u);
  EXPECT_EQ(normals[1], 2u);
  EXPECT_TRUE(trace.hosts_in(HostCategory::kP2P).empty());
}

TEST(Trace, Duration) {
  Trace trace;
  EXPECT_DOUBLE_EQ(trace.duration(), 0.0);
  trace.add({2.5, EventType::kInboundContact, 0, 1, 0.0});
  trace.finalize();
  EXPECT_DOUBLE_EQ(trace.duration(), 2.5);
}

TEST(Trace, CsvExport) {
  Trace trace;
  trace.add({1.5, EventType::kOutboundContact, 3, 99, 0.0});
  trace.finalize();
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("time,type,host,remote,ttl"), std::string::npos);
  EXPECT_NE(csv.find("1.5,0,3,99,0"), std::string::npos);
}

TEST(TraceCsv, RoundTrip) {
  Trace original;
  original.add({1.5, EventType::kOutboundContact, 3, 99, 0.0});
  original.add({0.25, EventType::kDnsAnswer, 1, 42, 600.0});
  original.add({2.0, EventType::kInboundContact, 0, 7, 0.0});
  original.finalize();

  const Trace parsed = parse_trace_csv(original.to_csv());
  ASSERT_EQ(parsed.events().size(), 3u);
  EXPECT_TRUE(parsed.finalized());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(parsed.events()[i].time, original.events()[i].time);
    EXPECT_EQ(parsed.events()[i].type, original.events()[i].type);
    EXPECT_EQ(parsed.events()[i].host, original.events()[i].host);
    EXPECT_EQ(parsed.events()[i].remote, original.events()[i].remote);
    EXPECT_DOUBLE_EQ(parsed.events()[i].dns_ttl,
                     original.events()[i].dns_ttl);
  }
}

TEST(TraceCsv, ParsesUnsortedInputAndSorts) {
  const Trace parsed = parse_trace_csv(
      "time,type,host,remote,ttl\n"
      "5,0,1,10,0\n"
      "1,0,1,11,0\n");
  ASSERT_EQ(parsed.events().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.events()[0].time, 1.0);
}

TEST(TraceCsv, SkipsBlankLines) {
  const Trace parsed = parse_trace_csv(
      "time,type,host,remote,ttl\n\n1,0,0,5,0\n\n");
  EXPECT_EQ(parsed.events().size(), 1u);
}

TEST(TraceCsv, RejectsMalformedInput) {
  EXPECT_THROW(parse_trace_csv(""), std::invalid_argument);
  EXPECT_THROW(parse_trace_csv("wrong,header\n"), std::invalid_argument);
  EXPECT_THROW(
      parse_trace_csv("time,type,host,remote,ttl\n1,0,0\n"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_trace_csv("time,type,host,remote,ttl\n1,0,0,5,0,9\n"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_trace_csv("time,type,host,remote,ttl\n1,7,0,5,0\n"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_trace_csv("time,type,host,remote,ttl\nabc,0,0,5,0\n"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_trace_csv("time,type,host,remote,ttl\n-1,0,0,5,0\n"),
      std::invalid_argument);
}

TEST(TraceCsv, DepartmentRoundTripPreservesAnalysis) {
  // A generated trace survives export+import with identical analysis
  // inputs (event multiset).
  Trace original;
  original.add({0.5, EventType::kOutboundContact, 0, 10, 0.0});
  original.add({0.5, EventType::kOutboundContact, 0, 11, 0.0});
  original.add({6.0, EventType::kOutboundContact, 0, 12, 0.0});
  original.finalize();
  const Trace parsed = parse_trace_csv(original.to_csv());
  EXPECT_EQ(parsed.events().size(), original.events().size());
  EXPECT_DOUBLE_EQ(parsed.duration(), original.duration());
}

TEST(Trace, CategoryNames) {
  EXPECT_EQ(to_string(HostCategory::kNormalClient), "normal-client");
  EXPECT_EQ(to_string(HostCategory::kServer), "server");
  EXPECT_EQ(to_string(HostCategory::kP2P), "p2p");
  EXPECT_EQ(to_string(HostCategory::kWormBlaster), "worm-blaster");
  EXPECT_EQ(to_string(HostCategory::kWormWelchia), "worm-welchia");
}

}  // namespace
}  // namespace dq::trace
