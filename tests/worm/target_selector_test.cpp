#include "worm/target_selector.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dq::worm {
namespace {

TargetSelectorConfig config(ScanStrategy strategy) {
  TargetSelectorConfig c;
  c.strategy = strategy;
  return c;
}

TargetSelector make(ScanStrategy strategy, std::size_t n = 100,
                    std::uint64_t seed = 1) {
  return TargetSelector(config(strategy), n, {}, {}, seed);
}

TEST(TargetSelector, Validation) {
  EXPECT_THROW(TargetSelector(config(ScanStrategy::kRandom), 1, {}, {}, 1),
               std::invalid_argument);
  TargetSelectorConfig bad = config(ScanStrategy::kLocalPreferential);
  bad.local_bias = 1.5;
  EXPECT_THROW(TargetSelector(bad, 10, {}, {}, 1), std::invalid_argument);
  const std::vector<std::size_t> wrong_size(3, 0);
  EXPECT_THROW(
      TargetSelector(config(ScanStrategy::kRandom), 10, &wrong_size, {}, 1),
      std::invalid_argument);
}

TEST(TargetSelector, NeverPicksSelf) {
  for (ScanStrategy s :
       {ScanStrategy::kRandom, ScanStrategy::kSequential,
        ScanStrategy::kPermutation, ScanStrategy::kHitlist}) {
    TargetSelector selector = make(s, 20);
    Rng rng(7);
    for (int i = 0; i < 500; ++i)
      EXPECT_NE(selector.pick(3, rng), 3u) << static_cast<int>(s);
  }
}

TEST(TargetSelector, RandomCoversPopulation) {
  TargetSelector selector = make(ScanStrategy::kRandom, 10);
  Rng rng(2);
  std::set<graph::NodeId> seen;
  for (int i = 0; i < 500; ++i) seen.insert(selector.pick(0, rng));
  EXPECT_EQ(seen.size(), 9u);
}

TEST(TargetSelector, SequentialWalksInOrder) {
  TargetSelector selector = make(ScanStrategy::kSequential, 50);
  Rng rng(3);
  const graph::NodeId first = selector.pick(7, rng);
  const graph::NodeId second = selector.pick(7, rng);
  // Consecutive ids modulo N (skipping the scanner itself).
  graph::NodeId expected = (first + 1) % 50;
  if (expected == 7) expected = (expected + 1) % 50;
  EXPECT_EQ(second, expected);
}

TEST(TargetSelector, SequentialCoversEverythingInNScans) {
  TargetSelector selector = make(ScanStrategy::kSequential, 30);
  Rng rng(4);
  std::set<graph::NodeId> seen;
  for (int i = 0; i < 29; ++i) seen.insert(selector.pick(5, rng));
  EXPECT_EQ(seen.size(), 29u);  // everyone except the scanner, no repeats
}

TEST(TargetSelector, PermutationCoversEverythingInNScans) {
  TargetSelector selector = make(ScanStrategy::kPermutation, 64);
  Rng rng(5);
  std::set<graph::NodeId> seen;
  for (int i = 0; i < 63; ++i) seen.insert(selector.pick(9, rng));
  EXPECT_EQ(seen.size(), 63u);
}

TEST(TargetSelector, PermutationScannersStartAtDifferentOffsets) {
  TargetSelector selector = make(ScanStrategy::kPermutation, 1000);
  Rng rng(6);
  // Different scanners should (almost surely) start elsewhere in the
  // permutation — the strategy's whole point is partitioned coverage.
  const graph::NodeId a = selector.pick(1, rng);
  const graph::NodeId b = selector.pick(2, rng);
  const graph::NodeId c = selector.pick(3, rng);
  EXPECT_FALSE(a == b && b == c);
}

TEST(TargetSelector, HitlistScannedFirstThenRandom) {
  TargetSelectorConfig c = config(ScanStrategy::kHitlist);
  c.hitlist_size = 5;
  TargetSelector selector(c, 100, {}, {}, 7);
  ASSERT_EQ(selector.hitlist().size(), 5u);
  Rng rng(8);
  // The first picks are exactly the hitlist (cyclically from the
  // scanner's own offset), scanner absent.
  std::set<graph::NodeId> first_picks;
  for (int i = 0; i < 5; ++i) first_picks.insert(selector.pick(99, rng));
  const std::set<graph::NodeId> expected(selector.hitlist().begin(),
                                         selector.hitlist().end());
  EXPECT_EQ(first_picks, expected);
  // Further picks fall back to random but remain valid.
  for (int i = 0; i < 50; ++i) {
    const graph::NodeId t = selector.pick(99, rng);
    EXPECT_LT(t, 100u);
    EXPECT_NE(t, 99u);
  }
}

TEST(TargetSelector, HitlistEachScannerCoversFullList) {
  // Regression: the cursor used to be shared across scanners, so the
  // list was consumed once globally; every scanner must cover it.
  TargetSelectorConfig c = config(ScanStrategy::kHitlist);
  c.hitlist_size = 8;
  TargetSelector selector(c, 100, {}, {}, 11);
  ASSERT_EQ(selector.hitlist().size(), 8u);
  const std::set<graph::NodeId> expected(selector.hitlist().begin(),
                                         selector.hitlist().end());
  Rng rng(12);
  std::vector<graph::NodeId> scanners;  // two scanners not on the list
  for (graph::NodeId v = 0; scanners.size() < 2; ++v)
    if (expected.count(v) == 0) scanners.push_back(v);
  for (graph::NodeId scanner : scanners) {
    std::set<graph::NodeId> picks;
    for (int i = 0; i < 8; ++i) picks.insert(selector.pick(scanner, rng));
    EXPECT_EQ(picks, expected) << "scanner " << scanner;
  }
}

TEST(TargetSelector, HitlistSelfEntryNotBurnedForOthers) {
  // Regression: a list entry equal to the current scanner used to be
  // consumed from the shared cursor, so nobody ever scanned it. Each
  // scanner must still cover every *other* entry, and a scanner that
  // appears on the list covers the whole list minus itself.
  TargetSelectorConfig c = config(ScanStrategy::kHitlist);
  c.hitlist_size = 6;
  TargetSelector selector(c, 6, {}, {}, 13);  // list == whole population
  ASSERT_EQ(selector.hitlist().size(), 6u);
  Rng rng(14);
  const graph::NodeId scanner = selector.hitlist()[2];
  std::set<graph::NodeId> picks;
  for (int i = 0; i < 5; ++i) picks.insert(selector.pick(scanner, rng));
  EXPECT_EQ(picks.size(), 5u);
  EXPECT_EQ(picks.count(scanner), 0u);
}

TEST(TargetSelector, HitlistClampedToPopulation) {
  TargetSelectorConfig c = config(ScanStrategy::kHitlist);
  c.hitlist_size = 1000;
  TargetSelector selector(c, 10, {}, {}, 9);
  EXPECT_EQ(selector.hitlist().size(), 10u);
}

TEST(TargetSelector, LocalPreferentialUsesSubnets) {
  // Two subnets of 5; scanner 0 is in subnet 0.
  std::vector<std::size_t> subnet_of = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  std::vector<std::vector<graph::NodeId>> members = {{0, 1, 2, 3, 4},
                                                     {5, 6, 7, 8, 9}};
  TargetSelectorConfig c = config(ScanStrategy::kLocalPreferential);
  c.local_bias = 0.9;
  TargetSelector selector(c, 10, &subnet_of, &members, 10);
  Rng rng(11);
  int local = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    if (selector.pick(0, rng) < 5) ++local;
  // ~0.9 + 0.1*4/9 of picks stay local.
  EXPECT_NEAR(static_cast<double>(local) / n, 0.9 + 0.1 * 4.0 / 9.0, 0.03);
}

TEST(TargetSelector, StatelessMatchesPickForMemorylessStrategies) {
  std::vector<std::size_t> subnet_of = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  std::vector<std::vector<graph::NodeId>> members = {{0, 1, 2, 3, 4},
                                                     {5, 6, 7, 8, 9}};
  for (ScanStrategy s :
       {ScanStrategy::kRandom, ScanStrategy::kLocalPreferential}) {
    TargetSelector selector(config(s), 10, &subnet_of, &members, 21);
    Rng ra(3), rb(3);
    TargetSelector mutable_copy(config(s), 10, &subnet_of, &members, 21);
    for (int i = 0; i < 200; ++i)
      EXPECT_EQ(selector.pick_stateless(0, ra), mutable_copy.pick(0, rb));
  }
}

TEST(TargetSelector, StatelessRejectsCursorStrategies) {
  Rng rng(4);
  for (ScanStrategy s : {ScanStrategy::kSequential, ScanStrategy::kPermutation,
                         ScanStrategy::kHitlist}) {
    TargetSelector selector = make(s, 20);
    EXPECT_THROW(selector.pick_stateless(1, rng), std::logic_error);
  }
}

TEST(TargetSelector, LocalPreferentialWithoutSubnetsIsRandom) {
  TargetSelector selector = make(ScanStrategy::kLocalPreferential, 10);
  Rng rng(12);
  std::set<graph::NodeId> seen;
  for (int i = 0; i < 500; ++i) seen.insert(selector.pick(0, rng));
  EXPECT_EQ(seen.size(), 9u);
}

TEST(TargetSelector, DeterministicForSeed) {
  TargetSelector a = make(ScanStrategy::kPermutation, 100, 42);
  TargetSelector b = make(ScanStrategy::kPermutation, 100, 42);
  Rng ra(1), rb(1);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(a.pick(3, ra), b.pick(3, rb));
}

}  // namespace
}  // namespace dq::worm
