// dqctl — command-line driver for the dynamic-quarantine library.
//
//   dqctl scenario [options]     evaluate a worm/defense scenario
//   dqctl trace [options]        synthesize a department trace (CSV)
//   dqctl analyze FILE [options] contact-rate analysis of a trace CSV
//   dqctl plan FILE [options]    derive a quarantine plan from a trace
//   dqctl quarantine [FILE]      replay a trace through the quarantine
//                                engine (synthesizes one when no FILE)
//   dqctl figure ID [--csv]      print one paper figure (fig1a..fig11)
//   dqctl campaign list|status|run [NAMES...]
//                                declarative experiment campaigns with
//                                content-hashed artifact caching
//   dqctl obs summarize FILE     aggregate an NDJSON event trace
//                                (detection latency, false positives,
//                                per-kind event counts)
//   dqctl obs report FILE        render a metrics-snapshot NDJSON
//                                series (dqctl serve --metrics-out)
//                                into per-shard utilization and
//                                latency-percentile tables
//
// Run any subcommand with --help for its options.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/scenarios.hpp"
#include "obs/ndjson.hpp"
#include "obs/prometheus.hpp"
#include "obs/span.hpp"
#include "core/experiments.hpp"
#include "stats/hash.hpp"
#include "core/planner.hpp"
#include "core/scenario.hpp"
#include "serve/failpoints.hpp"
#include "serve/server.hpp"
#include "trace/analysis.hpp"
#include "trace/classifier.hpp"
#include "trace/department.hpp"
#include "trace/quarantine_replay.hpp"

namespace {

using namespace dq;

/// Argument mistakes (unknown command or flag): main prints the
/// message and the usage text and exits 2, like no arguments at all —
/// distinct from runtime failures (exit 1).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Minimal "--key value / --flag" parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) == 0) {
        const std::string key = token.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
          values_[key] = argv[++i];
        else
          values_[key] = "";
      } else {
        positional_.push_back(std::move(token));
      }
    }
  }

  /// Strict mode: every --flag present must be in `allowed` (--help is
  /// always accepted). Called once per subcommand, so a typo fails
  /// loudly instead of silently falling back to a default.
  void allow_only(const std::vector<std::string_view>& allowed) const {
    for (const auto& [key, value] : values_) {
      if (key == "help") continue;
      bool known = false;
      for (const std::string_view a : allowed) known = known || key == a;
      if (!known) throw UsageError("unknown flag --" + key);
    }
  }

  bool flag(const std::string& key) const { return values_.contains(key); }
  std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

int usage() {
  std::cerr
      << "usage:\n"
         "  dqctl scenario [--topology star|powerlaw|subnets] "
         "[--topology-file EDGELIST]\n"
         "                 [--nodes N]\n"
         "                 [--beta B] [--worm random|localpref|sequential|"
         "permutation|hitlist]\n"
         "                 [--deployment none|host|edge|backbone]\n"
         "                 [--host-fraction Q] [--immunize-at F] [--mu M]\n"
         "                 [--horizon T] [--runs R] [--seed S] "
         "[--analytical]\n"
         "  dqctl trace [--duration SECONDS] [--seed S] [--out FILE]\n"
         "              [--normal N --servers N --p2p N --blaster N "
         "--welchia N]\n"
         "  dqctl analyze FILE [--window W] [--per-host] "
         "[--coverage C]\n"
         "  dqctl classify FILE        behavioural host classification\n"
         "  dqctl plan FILE [--normal N --servers N --p2p N --blaster N "
         "--welchia N]\n"
         "  dqctl quarantine [FILE] [census flags as for plan] "
         "[--duration SECONDS]\n"
         "                   [--window W] [--contact-limit C] "
         "[--distinct-limit D]\n"
         "                   [--failure-ratio F] [--min-attempts A] "
         "[--strikes K]\n"
         "                   [--base-period P] [--escalation E] "
         "[--max-period M] [--seed S]\n"
         "                   [--estimator exact|shared_bitmap] "
         "[--block-hosts K] [--pool-bits B] [--virtual-bits V]\n"
         "  dqctl figure ID [--csv] [--quick]   (fig1a fig1b fig2 fig3a "
         "fig3b fig4 fig5 fig6 fig7a fig7b fig8a fig8b fig9a fig9b fig10 "
         "fig11)\n"
         "  dqctl campaign list                 show the scenario "
         "catalogue\n"
         "  dqctl campaign status [NAMES...]    per-job cache state, no "
         "execution\n"
         "  dqctl campaign run [NAMES...] [--jobs N] [--no-cache]\n"
         "                 [--cache-dir DIR] [--out DIR] [--runs R] "
         "[--seed S]\n"
         "                 [--quick] [--csv]    execute scenarios (all "
         "when no NAMES)\n"
         "                 [--trace-dir DIR]    write per-job NDJSON "
         "event traces\n"
         "                 [--metrics-out FILE] write merged metrics "
         "snapshot (JSON)\n"
         "                 [--profile-out FILE] write a Chrome trace of "
         "the job schedule\n"
         "                 [--progress]         live one-line progress "
         "meter\n"
         "  dqctl obs summarize FILE [--json]   aggregate an NDJSON "
         "event trace\n"
         "  dqctl obs report FILE               per-shard health + "
         "latency tables from\n"
         "                                      a serve --metrics-out "
         "snapshot series\n"
         "  dqctl serve [--input FILE | --trace FILE [--speed X] | "
         "--synthetic]\n"
         "              [--shards N] [--hosts N] [--flows N] "
         "[--worm-fraction F]\n"
         "              [--out FILE] [--no-decisions] "
         "[--metrics-out FILE]\n"
         "              [--metrics-interval N] "
         "[--metrics-interval-ms MS] [--stop-after N]\n"
         "              [--queue-capacity N] [--slo-ms MS]\n"
         "              [--prom-out FILE] [--metrics-addr HOST:PORT] "
         "[--profile-out FILE]\n"
         "              [--checkpoint-out FILE [--checkpoint-interval N]] "
         "[--restore FILE]\n"
         "              [--overload block|shed] [--stall-timeout SECONDS]\n"
         "              [--inject SPEC]         failpoints, also via "
         "DQ_FAILPOINTS (docs/ROBUSTNESS.md)\n"
         "              [census flags as for plan] [detector/policy "
         "flags as for quarantine]\n"
         "              stream quarantine decisions (NDJSON in, NDJSON "
         "out)\n";
  return 2;
}

core::Scenario scenario_from(const Args& args) {
  core::Scenario s;
  const std::string topology = args.str("topology", "powerlaw");
  if (topology == "star")
    s.topology.kind = core::ScenarioTopology::Kind::kStar;
  else if (topology == "subnets")
    s.topology.kind = core::ScenarioTopology::Kind::kSubnets;
  else if (topology == "powerlaw")
    s.topology.kind = core::ScenarioTopology::Kind::kPowerLaw;
  else
    throw std::invalid_argument("unknown topology: " + topology);
  if (args.flag("topology-file")) {
    s.topology.kind = core::ScenarioTopology::Kind::kEdgeList;
    s.topology.edge_list_path = args.str("topology-file", "");
  }
  s.topology.nodes = static_cast<std::size_t>(args.num("nodes", 1000));
  s.worm.contact_rate = args.num("beta", 0.8);

  const std::string worm = args.str("worm", "random");
  if (worm == "localpref")
    s.worm.worm_class = epidemic::WormClass::kLocalPreferential;
  else if (worm == "sequential")
    s.worm.scan_strategy = worm::ScanStrategy::kSequential;
  else if (worm == "permutation")
    s.worm.scan_strategy = worm::ScanStrategy::kPermutation;
  else if (worm == "hitlist")
    s.worm.scan_strategy = worm::ScanStrategy::kHitlist;
  else if (worm != "random")
    throw std::invalid_argument("unknown worm: " + worm);

  const std::string deployment = args.str("deployment", "none");
  if (deployment == "host")
    s.defense.deployment = core::Deployment::kHostBased;
  else if (deployment == "edge")
    s.defense.deployment = core::Deployment::kEdgeRouter;
  else if (deployment == "backbone")
    s.defense.deployment = core::Deployment::kBackbone;
  else if (deployment != "none")
    throw std::invalid_argument("unknown deployment: " + deployment);
  s.defense.host_fraction = args.num("host-fraction", 0.0);
  if (args.flag("immunize-at")) {
    s.defense.immunization_start_fraction = args.num("immunize-at", 0.2);
    s.defense.immunization_rate = args.num("mu", 0.1);
  }
  s.horizon = args.num("horizon", 100.0);
  s.seed = static_cast<std::uint64_t>(args.num("seed", 42.0));
  return s;
}

int cmd_scenario(const Args& args) {
  args.allow_only({"topology", "topology-file", "nodes", "beta", "worm",
                   "deployment", "host-fraction", "immunize-at", "mu",
                   "horizon", "runs", "seed", "analytical"});
  const core::Scenario s = scenario_from(args);
  const core::PropagationResult result =
      args.flag("analytical")
          ? core::run_analytical(s)
          : core::run_simulation(
                s, static_cast<std::size_t>(args.num("runs", 10.0)));
  std::cout << "time,ever_infected,active_infected\n";
  for (std::size_t i = 0; i < result.ever_infected.size(); ++i)
    std::cout << result.ever_infected.time_at(i) << ','
              << result.ever_infected.value_at(i) << ','
              << result.active_infected.value_at(i) << '\n';
  std::cerr << "t50 = " << result.time_to_half()
            << " ticks, final ever infected = "
            << result.final_ever_infected() << '\n';
  return 0;
}

trace::DepartmentConfig department_from(const Args& args) {
  trace::DepartmentConfig config;
  config.normal_clients = static_cast<std::size_t>(args.num("normal", 999));
  config.servers = static_cast<std::size_t>(args.num("servers", 17));
  config.p2p_clients = static_cast<std::size_t>(args.num("p2p", 33));
  config.blaster_hosts = static_cast<std::size_t>(args.num("blaster", 40));
  config.welchia_hosts = static_cast<std::size_t>(args.num("welchia", 39));
  config.duration = args.num("duration", 3600.0);
  return config;
}

int cmd_trace(const Args& args) {
  args.allow_only({"duration", "seed", "out", "normal", "servers", "p2p",
                   "blaster", "welchia"});
  const trace::DepartmentConfig config = department_from(args);
  const trace::Trace department = trace::generate_department_trace(
      config, static_cast<std::uint64_t>(args.num("seed", 42.0)));
  const std::string out = args.str("out", "");
  if (out.empty()) {
    std::cout << department.to_csv();
  } else {
    std::ofstream file(out);
    if (!file) {
      std::cerr << "cannot write " << out << '\n';
      return 1;
    }
    file << department.to_csv();
    std::cerr << department.events().size() << " events -> " << out << '\n';
  }
  return 0;
}

trace::Trace load_trace(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::invalid_argument("cannot read " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return trace::parse_trace_csv(buffer.str());
}

std::vector<trace::HostId> all_hosts(const trace::Trace& t) {
  trace::HostId max_host = 0;
  for (const trace::TraceEvent& e : t.events())
    max_host = std::max(max_host, e.host);
  std::vector<trace::HostId> hosts(max_host + 1);
  for (trace::HostId h = 0; h <= max_host; ++h) hosts[h] = h;
  return hosts;
}

int cmd_analyze(const Args& args) {
  args.allow_only({"window", "per-host", "coverage"});
  if (args.positional().empty()) return usage();
  const trace::Trace t = load_trace(args.positional()[0]);
  const std::vector<trace::HostId> hosts = all_hosts(t);
  trace::ContactRateOptions options;
  options.window = args.num("window", 5.0);
  options.aggregate = !args.flag("per-host");
  const double coverage = args.num("coverage", 0.999);

  std::cout << "events: " << t.events().size() << ", hosts: " << hosts.size()
            << ", duration: " << t.duration() << " s\n";
  const char* names[] = {"distinct IPs", "no prior contact",
                         "no prior, no DNS"};
  const trace::Refinement refinements[] = {
      trace::Refinement::kAllDistinct, trace::Refinement::kNoPriorContact,
      trace::Refinement::kNoPriorNoDns};
  for (int i = 0; i < 3; ++i) {
    const auto counts =
        trace::window_counts(t, hosts, refinements[i], options);
    const trace::ImpactReport stats = trace::evaluate_limit(counts, 1e18);
    const double limit = EmpiricalCdf(counts).limit_for_coverage(coverage);
    std::cout << names[i] << ": mean " << stats.mean_count << ", max "
              << stats.max_count << ", " << 100.0 * coverage
              << "% limit = " << limit << " per " << options.window
              << " s window\n";
  }
  return 0;
}

int cmd_classify(const Args& args) {
  args.allow_only({});
  if (args.positional().empty()) return usage();
  const trace::Trace t = load_trace(args.positional()[0]);
  const auto features = trace::extract_features(t);
  std::size_t counts[5] = {};
  std::cout << "host,category,outbound_rate,inbound_ratio,dns_fraction,"
               "freshness,peak_per_minute\n";
  for (const trace::HostFeatures& f : features) {
    const trace::HostCategory category = trace::classify_host(f);
    ++counts[static_cast<int>(category)];
    std::cout << f.host << ',' << trace::to_string(category) << ','
              << f.outbound_rate() << ',' << f.inbound_outbound_ratio()
              << ',' << f.dns_fraction() << ',' << f.freshness() << ','
              << f.peak_distinct_per_minute << '\n';
  }
  std::cerr << "census: normal " << counts[0] << ", server " << counts[1]
            << ", p2p " << counts[2] << ", blaster " << counts[3]
            << ", welchia " << counts[4] << '\n';
  return 0;
}

int cmd_plan(const Args& args) {
  args.allow_only({"normal", "servers", "p2p", "blaster", "welchia"});
  if (args.positional().empty()) return usage();
  trace::Trace t = load_trace(args.positional()[0]);
  // Assign categories in id order from the census options (the CSV
  // format does not carry categories).
  const trace::DepartmentConfig census = department_from(args);
  std::vector<trace::HostCategory> categories;
  auto fill = [&](std::size_t n, trace::HostCategory c) {
    categories.insert(categories.end(), n, c);
  };
  fill(census.normal_clients, trace::HostCategory::kNormalClient);
  fill(census.servers, trace::HostCategory::kServer);
  fill(census.p2p_clients, trace::HostCategory::kP2P);
  fill(census.blaster_hosts, trace::HostCategory::kWormBlaster);
  fill(census.welchia_hosts, trace::HostCategory::kWormWelchia);
  t.set_host_categories(std::move(categories));
  std::cout << core::plan_from_trace(t).summary();
  return 0;
}

/// The trace-domain detector/policy flags shared by `quarantine` and
/// `serve`.
constexpr std::string_view kQuarantineFlags[] = {
    "window",        "contact-limit", "distinct-limit",
    "failure-ratio", "min-attempts",  "strikes",
    "base-period",   "escalation",    "max-period",
    "estimator",     "block-hosts",   "pool-bits",
    "virtual-bits"};

quarantine::QuarantineConfig quarantine_config_from(const Args& args) {
  quarantine::QuarantineConfig config;
  config.enabled = true;
  config.detector.window = args.num("window", 5.0);
  config.detector.contact_rate_threshold = args.num("contact-limit", 25.0);
  config.detector.distinct_dest_threshold = args.num("distinct-limit", 20.0);
  // Trace-domain failure signal: "failed" means a first-contact
  // destination (no DNS, no prior inbound), which normal clients also
  // produce in small numbers — so the ratio needs a high bar and a
  // generous minimum-attempt guard, unlike the simulator where failure
  // means a genuinely unanswered scan.
  config.detector.failure_ratio_threshold = args.num("failure-ratio", 0.9);
  config.detector.failure_min_attempts =
      static_cast<std::uint32_t>(args.num("min-attempts", 10.0));
  config.policy.strikes_to_quarantine =
      static_cast<std::uint32_t>(args.num("strikes", 1.0));
  config.policy.base_period = args.num("base-period", 300.0);
  config.policy.escalation = args.num("escalation", 4.0);
  config.policy.max_period = args.num("max-period", 3600.0);
  // Detector-state backend (docs/QUARANTINE.md "Estimator backends"):
  // exact per-host detectors, or the shared-bitmap pool at a few
  // bytes/host for million-host fronts.
  const std::string estimator = args.str("estimator", "exact");
  if (estimator == "shared_bitmap")
    config.estimator_backend = quarantine::EstimatorBackend::kSharedBitmap;
  else if (estimator != "exact")
    throw UsageError("--estimator must be exact or shared_bitmap");
  config.compact.block_hosts =
      static_cast<std::uint32_t>(args.num("block-hosts", 256.0));
  config.compact.pool_bits_per_host =
      static_cast<std::uint32_t>(args.num("pool-bits", 6.0));
  config.compact.virtual_bits =
      static_cast<std::uint32_t>(args.num("virtual-bits", 64.0));
  return config;
}

/// Assigns census categories in host-id order (the CSV format does not
/// carry them).
void apply_census(trace::Trace& t, const trace::DepartmentConfig& census) {
  std::vector<trace::HostCategory> categories;
  auto fill = [&](std::size_t n, trace::HostCategory c) {
    categories.insert(categories.end(), n, c);
  };
  fill(census.normal_clients, trace::HostCategory::kNormalClient);
  fill(census.servers, trace::HostCategory::kServer);
  fill(census.p2p_clients, trace::HostCategory::kP2P);
  fill(census.blaster_hosts, trace::HostCategory::kWormBlaster);
  fill(census.welchia_hosts, trace::HostCategory::kWormWelchia);
  t.set_host_categories(std::move(categories));
}

int cmd_quarantine(const Args& args) {
  std::vector<std::string_view> allowed = {"duration", "seed",   "normal",
                                           "servers",  "p2p",    "blaster",
                                           "welchia"};
  allowed.insert(allowed.end(), std::begin(kQuarantineFlags),
                 std::end(kQuarantineFlags));
  args.allow_only(allowed);
  // Load a trace CSV when given, else synthesize the department trace;
  // either way the census flags define the per-category ground truth.
  const trace::DepartmentConfig census = department_from(args);
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 42.0));
  trace::Trace t;
  if (!args.positional().empty()) {
    t = load_trace(args.positional()[0]);
    apply_census(t, census);
  } else {
    t = trace::generate_department_trace(census, seed);
  }

  const quarantine::QuarantineConfig config = quarantine_config_from(args);
  const trace::QuarantineReplayReport report =
      trace::replay_quarantine(t, config);

  std::cout << report.events_processed << " events over " << t.duration()
            << " s, " << t.num_hosts() << " hosts\n\n";
  std::cout << std::left << std::setw(16) << "category" << std::right
            << std::setw(7) << "hosts" << std::setw(13) << "quarantined"
            << std::setw(9) << "events" << std::setw(13) << "mean-q-time"
            << std::setw(13) << "latency" << '\n';
  std::cout << std::fixed << std::setprecision(2);
  for (const trace::CategoryQuarantineStats& c : report.categories) {
    std::cout << std::left << std::setw(16) << trace::to_string(c.category)
              << std::right << std::setw(7) << c.hosts << std::setw(8)
              << c.quarantined_hosts << " (" << std::setw(3)
              << static_cast<int>(100.0 * c.quarantined_fraction + 0.5)
              << "%)" << std::setw(9) << c.quarantine_events << std::setw(12)
              << c.mean_quarantine_time << " s";
    if (c.mean_detection_latency >= 0.0)
      std::cout << std::setw(11) << c.mean_detection_latency << " s";
    else
      std::cout << std::setw(13) << "-";
    std::cout << '\n';
  }
  const quarantine::QuarantineReport& overall = report.overall;
  std::cout << "\nworm hosts detected : " << overall.detected_targets
            << " of " << overall.target_hosts << " ("
            << 100.0 * overall.detection_rate << "%), mean latency "
            << overall.mean_detection_latency << " s\n";
  std::cout << "false positives     : " << overall.false_positive_hosts
            << " of " << overall.benign_hosts << " benign hosts ("
            << 100.0 * overall.false_positive_rate << "%)\n";
  std::cout << "benign quarantine   : " << overall.benign_quarantine_time
            << " s total, " << overall.mean_benign_quarantine_time
            << " s per false-positive host\n";
  return 0;
}

int cmd_serve(const Args& args) {
  std::vector<std::string_view> allowed = {
      "input",       "trace",      "speed",          "synthetic",
      "flows",       "hosts",      "worm-fraction",  "shards",
      "queue-capacity", "out",     "no-decisions",   "metrics-out",
      "metrics-interval", "stop-after", "seed",      "duration",
      "normal",      "servers",    "p2p",            "blaster",
      "welchia",     "checkpoint-out", "checkpoint-interval",
      "restore",     "overload",   "stall-timeout",  "inject",
      "metrics-interval-ms", "prom-out", "metrics-addr", "slo-ms",
      "profile-out"};
  allowed.insert(allowed.end(), std::begin(kQuarantineFlags),
                 std::end(kQuarantineFlags));
  args.allow_only(allowed);

  const bool trace_mode = args.flag("trace");
  const bool synthetic_mode = args.flag("synthetic");
  if (trace_mode && synthetic_mode)
    throw UsageError("serve: --trace and --synthetic are exclusive");

  serve::ServeOptions options;
  options.shards = static_cast<std::size_t>(args.num("shards", 1.0));
  options.quarantine = quarantine_config_from(args);
  options.queue_capacity =
      static_cast<std::size_t>(args.num("queue-capacity", 4096.0));
  options.emit_decisions = !args.flag("no-decisions");
  options.metrics_interval_flows =
      static_cast<std::uint64_t>(args.num("metrics-interval", 0.0));
  options.metrics_interval_ms =
      static_cast<std::uint64_t>(args.num("metrics-interval-ms", 0.0));
  options.prom_path = args.str("prom-out", "");
  options.metrics_addr = args.str("metrics-addr", "");
  options.slo_ms = args.num("slo-ms", 0.0);
  options.stop_after_flows =
      static_cast<std::uint64_t>(args.num("stop-after", 0.0));
  // Profiling is process-local: the profiler outlives the server and is
  // rendered after run() returns (Chrome trace file + stderr table).
  std::unique_ptr<obs::Profiler> profiler;
  const std::string profile_out = args.str("profile-out", "");
  if (!profile_out.empty()) {
    profiler = std::make_unique<obs::Profiler>();
    options.profiler = profiler.get();
  }

  const std::string overload = args.str("overload", "block");
  if (overload == "block")
    options.overload = serve::OverloadPolicy::kBlock;
  else if (overload == "shed")
    options.overload = serve::OverloadPolicy::kShed;
  else
    throw UsageError("serve: --overload must be block or shed");
  options.stall_timeout_seconds = args.num("stall-timeout", 0.0);
  options.checkpoint_path = args.str("checkpoint-out", "");
  options.checkpoint_interval_flows =
      static_cast<std::uint64_t>(args.num("checkpoint-interval", 0.0));

  // Fault injection: --inject wins over the DQ_FAILPOINTS environment
  // variable; either way the spec is validated before the run starts.
  std::string inject = args.str("inject", "");
  if (!args.flag("inject")) {
    if (const char* env = std::getenv("DQ_FAILPOINTS")) inject = env;
  }
  serve::Failpoints::global().configure(inject);

  // A corrupt or truncated checkpoint raises serve::CheckpointError,
  // which main() reports on stderr with exit 1 — never a crash, never a
  // silent fresh start.
  std::shared_ptr<const serve::CheckpointState> restore;
  const std::string restore_path = args.str("restore", "");
  if (!restore_path.empty()) {
    if (trace_mode)
      throw std::invalid_argument(
          "serve: --restore is not supported with --trace (the trace "
          "failure oracle is in-memory state; restore NDJSON or "
          "synthetic streams)");
    restore = std::make_shared<const serve::CheckpointState>(
        serve::load_checkpoint_file(restore_path));
  }
  options.restore = restore;

  // Pick the flow source. Streams opened here must outlive run().
  std::ifstream input_file;
  trace::Trace t;
  serve::SyntheticConfig synth;
  std::unique_ptr<serve::FlowSource> source;
  if (trace_mode) {
    t = load_trace(args.str("trace", ""));
    apply_census(t, department_from(args));
    if (t.num_hosts() < 1)
      throw std::invalid_argument("serve: census is empty");
    options.num_hosts = static_cast<std::uint32_t>(t.num_hosts());
    source = std::make_unique<serve::TraceFlowSource>(
        t, args.num("speed", 0.0));
  } else if (synthetic_mode) {
    synth.flows = static_cast<std::uint64_t>(args.num("flows", 1e6));
    synth.hosts = static_cast<std::uint32_t>(args.num("hosts", 65536.0));
    synth.worm_fraction = args.num("worm-fraction", 0.01);
    synth.seed = static_cast<std::uint64_t>(args.num("seed", 42.0));
    if (restore != nullptr) {
      if (args.flag("hosts") && synth.hosts != restore->num_hosts)
        throw std::invalid_argument(
            "serve: --hosts disagrees with the checkpoint's host count");
      synth.hosts = restore->num_hosts;
      // Flow i is a pure function of (seed, i): resume emits exactly
      // the remainder of the uninterrupted stream.
      synth.start_flow = restore->flows_ingested;
    }
    options.num_hosts = synth.hosts;
    source = std::make_unique<serve::SyntheticFlowSource>(synth);
  } else {
    options.num_hosts = static_cast<std::uint32_t>(args.num("hosts", 65536.0));
    if (restore != nullptr) {
      if (args.flag("hosts") && options.num_hosts != restore->num_hosts)
        throw std::invalid_argument(
            "serve: --hosts disagrees with the checkpoint's host count");
      options.num_hosts = restore->num_hosts;
    }
    const std::string input = args.str("input", "-");
    std::istream* in = &std::cin;
    if (input != "-") {
      input_file.open(input, std::ios::binary);
      if (!input_file)
        throw std::invalid_argument("cannot read " + input);
      in = &input_file;
    }
    source =
        std::make_unique<serve::NdjsonFlowSource>(*in, options.num_hosts);
  }

  // Decision NDJSON to stdout unless redirected; metrics snapshots only
  // when asked for.
  std::ofstream out_file;
  std::ostream* decisions = &std::cout;
  const std::string out = args.str("out", "-");
  if (out != "-") {
    out_file.open(out, std::ios::binary | std::ios::trunc);
    if (!out_file) throw std::invalid_argument("cannot write " + out);
    decisions = &out_file;
  }
  std::ofstream metrics_file;
  std::ostream* metrics = nullptr;
  const std::string metrics_out = args.str("metrics-out", "");
  if (!metrics_out.empty()) {
    metrics_file.open(metrics_out, std::ios::binary | std::ios::trunc);
    if (!metrics_file)
      throw std::invalid_argument("cannot write " + metrics_out);
    metrics = &metrics_file;
  }

  serve::install_stop_handlers();
  serve::ServeServer server(options);
  if (!options.metrics_addr.empty())
    std::cerr << "metrics: http://127.0.0.1:" << server.metrics_port()
              << "/metrics\n";
  // With --no-decisions the per-flow lines are skipped but the final
  // summary line is still written to the decision stream.
  const serve::ServeSummary summary = server.run(*source, decisions, metrics);
  if (out_file.is_open() && !out_file)
    throw std::runtime_error("serve: error writing " + out);

  if (profiler != nullptr) {
    std::ofstream trace_file(profile_out,
                             std::ios::binary | std::ios::trunc);
    if (!trace_file)
      throw std::runtime_error("serve: cannot write " + profile_out);
    profiler->write_chrome_trace(trace_file);
    std::cerr << "profile: " << profiler->total_spans() << " spans -> "
              << profile_out << '\n'
              << profiler->render_table();
  }

  std::string degraded_note;
  if (summary.degraded)
    degraded_note = ", " + std::to_string(summary.shed_flows) +
                    " flows shed (DEGRADED)";
  std::cerr << std::fixed << std::setprecision(3) << summary.flows_ingested
            << " flows in " << summary.wall_seconds << " s ("
            << std::setprecision(0) << summary.flows_per_sec
            << " flows/s), " << summary.parse_errors << " parse errors, "
            << summary.time_regressions << " time regressions"
            << degraded_note
            << (summary.interrupted ? " — interrupted, drained" : "")
            << '\n';
  std::cerr << "decision latency p50/p90/p99/p999: "
            << summary.latency_p50_ns << "/" << summary.latency_p90_ns << "/"
            << summary.latency_p99_ns << "/" << summary.latency_p999_ns
            << " ns\n";
  if (summary.slo_ms > 0.0)
    std::cerr << "SLO " << summary.slo_ms << " ms: " << summary.slo_breaches
              << " breaches"
              << (summary.slo_breached ? " (BREACHED)" : " (met)") << '\n';
  const quarantine::QuarantineReport& r = summary.report;
  std::cerr << std::setprecision(2) << "detected " << r.detected_targets
            << " of " << r.target_hosts << " labeled hosts, "
            << r.false_positive_hosts << " of " << r.benign_hosts
            << " benign quarantined, " << r.benign_quarantine_time
            << " s benign quarantine time\n";
  return 0;
}

int cmd_figure(const Args& args) {
  args.allow_only({"csv", "quick"});
  if (args.positional().empty()) return usage();
  const std::string id = args.positional()[0];
  const core::ExperimentOptions options =
      args.flag("quick") ? core::ExperimentOptions::quick()
                         : core::ExperimentOptions{};

  std::optional<core::FigureData> fig;
  if (id == "fig1a") fig = core::fig1a_star_analytical();
  else if (id == "fig1b") fig = core::fig1b_star_simulated(options);
  else if (id == "fig2") fig = core::fig2_host_analytical();
  else if (id == "fig3a") fig = core::fig3a_edge_across_subnets();
  else if (id == "fig3b") fig = core::fig3b_edge_within_subnet();
  else if (id == "fig4") fig = core::fig4_powerlaw_simulated(options);
  else if (id == "fig5") fig = core::fig5_edge_localpref_simulated(options);
  else if (id == "fig6")
    fig = core::fig6_localpref_backbone_simulated(options);
  else if (id == "fig7a") fig = core::fig7a_immunization_analytical();
  else if (id == "fig7b")
    fig = core::fig7b_immunization_ratelimited_analytical();
  else if (id == "fig8a") fig = core::fig8a_immunization_simulated(options);
  else if (id == "fig8b")
    fig = core::fig8b_immunization_ratelimited_simulated(options);
  else if (id == "fig9a" || id == "fig9b") {
    const trace::Trace department = core::make_department_trace(options);
    fig = id == "fig9a" ? core::fig9a_normal_client_cdf(department)
                        : core::fig9b_worm_host_cdf(department);
  } else if (id == "fig10") {
    fig = core::fig10_trace_rates_analytical();
  } else if (id == "fig11") {
    fig = core::fig11_dynamic_quarantine_simulated(options);
  } else {
    std::cerr << "unknown figure id: " << id << '\n';
    return usage();
  }

  std::cout << (args.flag("csv") ? core::render_csv(*fig)
                                 : core::render_table(*fig));
  return 0;
}

/// Resolves the NAMES positionals (minus the verb) against the
/// catalogue; no names selects every scenario.
std::vector<campaign::ScenarioDef> select_scenarios(
    const std::vector<campaign::ScenarioDef>& catalogue, const Args& args) {
  std::vector<campaign::ScenarioDef> selected;
  if (args.positional().size() <= 1) return catalogue;
  for (std::size_t i = 1; i < args.positional().size(); ++i) {
    const std::string& name = args.positional()[i];
    const campaign::ScenarioDef* scenario =
        campaign::find_scenario(catalogue, name);
    if (!scenario)
      throw std::invalid_argument("unknown scenario: " + name +
                                  " (try `dqctl campaign list`)");
    selected.push_back(*scenario);
  }
  return selected;
}

/// Live one-line campaign progress meter. Job events arrive from
/// worker threads, so every update happens under a mutex; the line is
/// rewritten in place with '\r' and padded to cover the previous one.
class ProgressMeter {
 public:
  void operator()(const campaign::JobEvent& event) {
    std::lock_guard<std::mutex> lock(mu_);
    switch (event.phase) {
      case campaign::JobPhase::kQueued:
        ++queued_;
        break;
      case campaign::JobPhase::kStarted:
      case campaign::JobPhase::kCacheHit:
        // kCacheHit is followed by kFinished with cache_hit set; count
        // hits there so a hit is not tallied twice.
        return;
      case campaign::JobPhase::kFinished:
        ++done_;
        if (event.cache_hit) ++hits_;
        break;
      case campaign::JobPhase::kFailed:
        ++done_;
        ++failed_;
        break;
    }
    std::ostringstream line;
    line << "[" << done_ << "/" << queued_ << "] " << hits_ << " cached";
    if (failed_ > 0) line << ", " << failed_ << " failed";
    line << "  " << event.name;
    std::string text = line.str();
    const std::size_t width = text.size();
    if (text.size() < last_width_) text.append(last_width_ - text.size(), ' ');
    last_width_ = width;
    std::cerr << '\r' << text << std::flush;
  }

  /// Ends the meter line so subsequent output starts on a fresh line.
  void finish() {
    std::lock_guard<std::mutex> lock(mu_);
    if (last_width_ > 0) std::cerr << '\n';
  }

 private:
  std::mutex mu_;
  std::size_t queued_ = 0;
  std::size_t done_ = 0;
  std::size_t hits_ = 0;
  std::size_t failed_ = 0;
  std::size_t last_width_ = 0;
};

/// `dqctl obs report FILE`: renders a serve --metrics-out snapshot
/// series (full-snapshot NDJSON, one per line) into per-shard
/// utilization / queue-saturation and latency-percentile tables.
/// Per-shard rows need the health gauges (--metrics-interval-ms,
/// --prom-out, or --metrics-addr on the producing run); the latency
/// table needs only the serve.decision_latency_ns histogram every
/// serve run records.
int cmd_obs_report(const std::string& path) {
  using campaign::JsonValue;
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot read " + path);

  std::vector<JsonValue> snaps;
  std::string line;
  std::size_t malformed = 0;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    try {
      snaps.push_back(JsonValue::parse(line));
    } catch (const std::exception&) {
      ++malformed;
    }
  }
  if (snaps.empty())
    throw std::runtime_error("obs report: no metrics snapshots in " + path);
  if (malformed > 0)
    std::cerr << "obs report: skipped " << malformed
              << " malformed lines\n";

  // Per-shard health: peaks over the series, final decided counts.
  struct ShardRow {
    double max_queue = 0.0;
    double max_backlog = 0.0;
    double decided = 0.0;
  };
  std::map<std::uint64_t, ShardRow> shards;
  const auto shard_of = [](const std::string& name,
                           std::string_view prefix) -> long {
    // "<prefix>{shard=N}"
    if (name.size() <= prefix.size() + 8 ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(prefix.size(), 7, "{shard=") != 0 ||
        name.back() != '}')
      return -1;
    try {
      return std::stol(name.substr(prefix.size() + 7));
    } catch (const std::exception&) {
      return -1;
    }
  };
  for (const JsonValue& snap : snaps) {
    const JsonValue* gauges = snap.find("gauges");
    if (gauges == nullptr) continue;
    for (const auto& [name, value] : gauges->members()) {
      long s;
      if ((s = shard_of(name, "serve.shard_queue_depth")) >= 0) {
        ShardRow& row = shards[static_cast<std::uint64_t>(s)];
        row.max_queue = std::max(row.max_queue, value.as_number());
      } else if ((s = shard_of(name, "serve.shard_backlog")) >= 0) {
        ShardRow& row = shards[static_cast<std::uint64_t>(s)];
        row.max_backlog = std::max(row.max_backlog, value.as_number());
      } else if ((s = shard_of(name, "serve.shard_decided")) >= 0) {
        shards[static_cast<std::uint64_t>(s)].decided = value.as_number();
      }
    }
  }

  char buf[200];
  if (!shards.empty()) {
    double total_decided = 0.0;
    for (const auto& [s, row] : shards) total_decided += row.decided;
    std::cout << "per-shard health (" << snaps.size() << " snapshots)\n";
    std::snprintf(buf, sizeof buf, "%-8s %14s %14s %14s %8s\n", "shard",
                  "max queue", "max backlog", "decided", "share");
    std::cout << buf;
    for (const auto& [s, row] : shards) {
      const double share =
          total_decided > 0.0 ? 100.0 * row.decided / total_decided : 0.0;
      std::snprintf(buf, sizeof buf, "%-8llu %14.0f %14.0f %14.0f %7.1f%%\n",
                    static_cast<unsigned long long>(s), row.max_queue,
                    row.max_backlog, row.decided, share);
      std::cout << buf;
    }
    std::cout << '\n';
  } else {
    std::cout << "no per-shard health gauges in the series (enable with "
                 "--metrics-interval-ms, --prom-out, or --metrics-addr)\n\n";
  }

  // Latency percentiles per snapshot (log-2 bucket resolution).
  bool any_latency = false;
  for (const JsonValue& snap : snaps) {
    const JsonValue* hists = snap.find("histograms");
    if (hists != nullptr &&
        hists->find("serve.decision_latency_ns") != nullptr) {
      any_latency = true;
      break;
    }
  }
  if (any_latency) {
    std::cout << "decision latency (us, log-2 bucket upper bounds)\n";
    std::snprintf(buf, sizeof buf, "%-10s %14s %12s %12s %12s %12s\n",
                  "snapshot", "flows", "p50", "p90", "p99", "p999");
    std::cout << buf;
    for (std::size_t i = 0; i < snaps.size(); ++i) {
      const JsonValue* hists = snaps[i].find("histograms");
      const JsonValue* hist =
          hists != nullptr ? hists->find("serve.decision_latency_ns")
                           : nullptr;
      if (hist == nullptr) continue;
      std::uint64_t flows = 0;
      if (const JsonValue* counters = snaps[i].find("counters"))
        if (const JsonValue* fi = counters->find("serve.flows_ingested"))
          flows = fi->as_uint();
      const double scale = 1e-3;  // ns -> us
      std::snprintf(
          buf, sizeof buf, "%-10zu %14llu %12.1f %12.1f %12.1f %12.1f\n", i,
          static_cast<unsigned long long>(flows),
          static_cast<double>(obs::snapshot_histogram_quantile(*hist, 0.50)) *
              scale,
          static_cast<double>(obs::snapshot_histogram_quantile(*hist, 0.90)) *
              scale,
          static_cast<double>(obs::snapshot_histogram_quantile(*hist, 0.99)) *
              scale,
          static_cast<double>(
              obs::snapshot_histogram_quantile(*hist, 0.999)) *
              scale);
      std::cout << buf;
    }
  } else {
    std::cout << "no serve.decision_latency_ns histogram in the series\n";
  }
  return 0;
}

int cmd_obs(const Args& args) {
  args.allow_only({"json"});
  if (args.positional().size() < 2) return usage();
  const std::string& verb = args.positional()[0];
  if (verb == "report") return cmd_obs_report(args.positional()[1]);
  if (verb != "summarize") return usage();
  const std::string& path = args.positional()[1];
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const obs::NdjsonSummary summary = obs::summarize_ndjson(buffer.str());

  if (args.flag("json")) {
    std::cout << summary.to_json().dump() << '\n';
    return 0;
  }
  std::cout << "events            " << summary.total_events << " ("
            << summary.runs << " run" << (summary.runs == 1 ? "" : "s");
  if (summary.malformed_lines > 0)
    std::cout << ", " << summary.malformed_lines << " malformed lines";
  std::cout << ")\n";
  for (const auto& [kind, count] : summary.events_by_kind)
    std::cout << "  " << std::left << std::setw(22) << kind << count << '\n';
  std::cout << "infected hosts    " << summary.infected_hosts << '\n'
            << "quarantined hosts " << summary.quarantined_hosts << '\n'
            << "detected hosts    " << summary.detected_hosts << '\n'
            << "false positives   " << summary.false_positive_hosts << '\n'
            << "detector strikes  " << summary.strikes
            << (summary.strikes_time_ordered ? " (time-ordered)"
                                             : " (OUT OF ORDER)")
            << '\n';
  if (summary.detected_hosts > 0)
    std::cout << "mean detection latency " << std::fixed
              << std::setprecision(3) << summary.mean_detection_latency
              << " ticks\n";
  return 0;
}

int cmd_campaign(const Args& args) {
  args.allow_only({"jobs", "no-cache", "cache-dir", "out", "runs", "seed",
                   "quick", "csv", "trace-dir", "metrics-out", "progress",
                   "profile-out"});
  if (args.positional().empty()) return usage();
  const std::string verb = args.positional()[0];

  core::ExperimentOptions options = args.flag("quick")
                                        ? core::ExperimentOptions::quick()
                                        : core::ExperimentOptions{};
  if (args.flag("runs"))
    options.sim_runs = static_cast<std::size_t>(args.num("runs", 10.0));
  if (args.flag("seed"))
    options.seed = static_cast<std::uint64_t>(args.num("seed", 42.0));
  const std::vector<campaign::ScenarioDef> catalogue =
      campaign::builtin_scenarios(options);

  campaign::RunOptions run_options;
  run_options.jobs = static_cast<std::size_t>(args.num("jobs", 0.0));
  run_options.use_cache = !args.flag("no-cache");
  run_options.cache_dir = args.str("cache-dir", ".dq-cache");
  run_options.trace_dir = args.str("trace-dir", "");
  std::unique_ptr<obs::Profiler> profiler;
  const std::string profile_out = args.str("profile-out", "");
  if (!profile_out.empty()) {
    profiler = std::make_unique<obs::Profiler>();
    run_options.profiler = profiler.get();
  }
  ProgressMeter meter;
  if (args.flag("progress"))
    run_options.on_job_event = [&meter](const campaign::JobEvent& event) {
      meter(event);
    };

  if (verb == "list") {
    for (const campaign::ScenarioDef& scenario : catalogue)
      std::cout << std::left << std::setw(24) << scenario.name
                << scenario.jobs.size() << " jobs  "
                << scenario.description << '\n';
    return 0;
  }

  if (verb == "status") {
    const campaign::ArtifactCache cache(run_options.cache_dir);
    std::size_t cached = 0, total = 0;
    for (const campaign::ScenarioDef& scenario :
         select_scenarios(catalogue, args)) {
      for (const campaign::ScenarioJob& job : scenario.jobs) {
        const std::uint64_t hash = campaign::job_hash(job.config);
        const bool hit = cache.contains(hash);
        ++total;
        cached += hit ? 1 : 0;
        std::cout << (hit ? "cached " : "missing") << "  "
                  << dq::hash_hex(hash) << "  " << scenario.name << "/"
                  << job.name << '\n';
      }
    }
    std::cout << cached << "/" << total << " artifacts cached in "
              << run_options.cache_dir.string() << '\n';
    return 0;
  }

  if (verb != "run") return usage();

  const campaign::CampaignReport report =
      campaign::run_scenarios(select_scenarios(catalogue, args), run_options);
  meter.finish();

  if (profiler != nullptr) {
    std::ofstream trace_file(profile_out,
                             std::ios::binary | std::ios::trunc);
    if (!trace_file) throw std::runtime_error("cannot write " + profile_out);
    profiler->write_chrome_trace(trace_file);
    std::cerr << "profile: " << profiler->total_spans() << " spans -> "
              << profile_out << '\n'
              << profiler->render_table();
  }

  const std::string metrics_out = args.str("metrics-out", "");
  if (!metrics_out.empty()) {
    std::ofstream file(metrics_out, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("cannot write " + metrics_out);
    file << campaign::merge_outcome_metrics(report.outcomes).dump() << '\n';
  }

  int failures = 0;
  for (const campaign::JobOutcome& outcome : report.outcomes) {
    std::cerr << (outcome.ok() ? (outcome.cache_hit ? "hit    " : "ran    ")
                               : "FAILED ")
              << dq::hash_hex(outcome.hash) << "  " << std::left
              << std::setw(36) << outcome.name << std::fixed
              << std::setprecision(3) << outcome.wall_seconds << " s";
    if (!outcome.ok()) {
      std::cerr << "  (" << outcome.error << ")";
      ++failures;
    }
    std::cerr << '\n';
  }

  const std::string out_dir = args.str("out", "");
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    const auto write = [&](const std::filesystem::path& path,
                           const std::string& contents) {
      std::ofstream file(path, std::ios::binary | std::ios::trunc);
      if (!file) throw std::runtime_error("cannot write " + path.string());
      file << contents;
    };
    write(std::filesystem::path(out_dir) / "manifest.json",
          report.manifest.dump() + "\n");
    for (const core::FigureData& fig : report.figures)
      write(std::filesystem::path(out_dir) /
                (fig.id + (args.flag("csv") ? ".csv" : ".txt")),
            args.flag("csv") ? core::render_csv(fig)
                             : core::render_table(fig));
    std::cerr << "wrote manifest + " << report.figures.size()
              << " figures to " << out_dir << '\n';
  } else {
    for (const core::FigureData& fig : report.figures)
      std::cout << (args.flag("csv") ? core::render_csv(fig)
                                     : core::render_table(fig))
                << '\n';
    std::cout << report.manifest.dump() << '\n';
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  if (args.flag("help")) {
    usage();
    return 0;
  }
  try {
    if (command == "scenario") return cmd_scenario(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "classify") return cmd_classify(args);
    if (command == "plan") return cmd_plan(args);
    if (command == "quarantine") return cmd_quarantine(args);
    if (command == "figure") return cmd_figure(args);
    if (command == "campaign") return cmd_campaign(args);
    if (command == "obs") return cmd_obs(args);
    if (command == "serve") return cmd_serve(args);
    throw UsageError("unknown command: " + command);
  } catch (const UsageError& e) {
    std::cerr << "dqctl: " << e.what() << '\n';
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "dqctl: " << e.what() << '\n';
    return 1;
  }
}
