# End-to-end observability pipeline: campaign run with --trace-dir and
# --metrics-out, then `dqctl obs summarize` over a produced trace in
# both human and --json modes.
set(workdir ${CMAKE_CURRENT_BINARY_DIR}/dqctl_obs_smoke)
file(REMOVE_RECURSE ${workdir})
file(MAKE_DIRECTORY ${workdir})

execute_process(COMMAND ${DQCTL} campaign run fig01 --quick --no-cache
                        --trace-dir ${workdir}/traces
                        --metrics-out ${workdir}/metrics.json
                        --out ${workdir}/out
                RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dqctl campaign run --trace-dir failed: ${rc}")
endif()
if(NOT EXISTS ${workdir}/metrics.json)
  message(FATAL_ERROR "--metrics-out wrote no file")
endif()
file(READ ${workdir}/metrics.json metrics)
if(NOT metrics MATCHES "sim\\.runs")
  message(FATAL_ERROR "merged metrics missing sim.runs: ${metrics}")
endif()

set(trace ${workdir}/traces/fig01_no-rl.ndjson)
if(NOT EXISTS ${trace})
  message(FATAL_ERROR "campaign run wrote no trace for fig01/no-rl")
endif()
execute_process(COMMAND ${DQCTL} obs summarize ${trace}
                RESULT_VARIABLE rc OUTPUT_VARIABLE human)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dqctl obs summarize failed: ${rc}")
endif()
if(NOT human MATCHES "infected hosts")
  message(FATAL_ERROR "summarize output missing summary lines: ${human}")
endif()
execute_process(COMMAND ${DQCTL} obs summarize ${trace} --json
                RESULT_VARIABLE rc OUTPUT_VARIABLE json)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dqctl obs summarize --json failed: ${rc}")
endif()
if(NOT json MATCHES "\"total_events\":")
  message(FATAL_ERROR "summarize --json output malformed: ${json}")
endif()
file(REMOVE_RECURSE ${workdir})
