# End-to-end CLI pipeline: synthesize -> analyze -> classify -> plan.
set(trace ${CMAKE_CURRENT_BINARY_DIR}/dqctl_pipeline_trace.csv)
execute_process(COMMAND ${DQCTL} trace --normal 40 --servers 2 --p2p 3
                        --blaster 2 --welchia 2 --duration 900
                        --out ${trace}
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dqctl trace failed: ${rc}")
endif()
foreach(sub analyze classify)
  execute_process(COMMAND ${DQCTL} ${sub} ${trace}
                  RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "dqctl ${sub} failed: ${rc}")
  endif()
endforeach()
execute_process(COMMAND ${DQCTL} plan ${trace} --normal 40 --servers 2
                        --p2p 3 --blaster 2 --welchia 2
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dqctl plan failed: ${rc}")
endif()
file(REMOVE ${trace})
