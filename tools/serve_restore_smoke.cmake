# Crash-safe serve smoke (docs/ROBUSTNESS.md): checkpoint a synthetic
# run mid-stream with --stop-after, restore it at a different shard
# count, and require prefix + resumed decisions to be byte-identical to
# an uninterrupted run. Also checks that checkpoint bytes are
# shard-count invariant and that restoring a corrupt checkpoint fails
# with a diagnostic, not a crash or a silent fresh start.
#
# Artifacts stay in ${CMAKE_CURRENT_BINARY_DIR}/serve-restore-smoke so
# CI can upload checkpoint.json for inspection.
set(dir ${CMAKE_CURRENT_BINARY_DIR}/serve-restore-smoke)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})
set(stream --synthetic --flows 20000 --hosts 512)

# Uninterrupted reference run.
execute_process(COMMAND ${DQCTL} serve ${stream} --shards 2
                        --out ${dir}/full.ndjson
                RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "uninterrupted serve failed: ${rc}")
endif()

# Interrupt at flow 12000 (the real SIGTERM path) and checkpoint.
execute_process(COMMAND ${DQCTL} serve ${stream} --shards 2
                        --stop-after 12000
                        --checkpoint-out ${dir}/checkpoint.json
                        --out ${dir}/prefix.ndjson
                RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "checkpointing serve failed: ${rc}")
endif()
if(NOT EXISTS ${dir}/checkpoint.json)
  message(FATAL_ERROR "no checkpoint written")
endif()

# Resume at a different shard count.
execute_process(COMMAND ${DQCTL} serve ${stream} --shards 4
                        --restore ${dir}/checkpoint.json
                        --out ${dir}/resume.ndjson
                RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "restored serve failed: ${rc}")
endif()

# prefix-without-summary + resume == full, byte for byte.
file(READ ${dir}/prefix.ndjson prefix)
string(FIND "${prefix}" "{\"summary\"" cut)
if(cut EQUAL -1)
  message(FATAL_ERROR "prefix run is missing its summary line")
endif()
string(SUBSTRING "${prefix}" 0 ${cut} decisions_prefix)
file(READ ${dir}/resume.ndjson resume)
file(READ ${dir}/full.ndjson full)
if(NOT "${decisions_prefix}${resume}" STREQUAL "${full}")
  message(FATAL_ERROR "prefix + restored run differs from the "
                      "uninterrupted stream")
endif()

# Checkpoint bytes are shard-count invariant: retaking the same
# checkpoint at 1 and 4 shards reproduces identical files.
foreach(shards 1 4)
  execute_process(COMMAND ${DQCTL} serve ${stream} --shards ${shards}
                          --stop-after 12000
                          --checkpoint-out ${dir}/ck-${shards}.json
                          --out ${dir}/ignore.ndjson
                  RESULT_VARIABLE rc ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "checkpoint at ${shards} shards failed: ${rc}")
  endif()
endforeach()
file(READ ${dir}/ck-1.json ck1)
file(READ ${dir}/ck-4.json ck4)
file(READ ${dir}/checkpoint.json ck2)
if(NOT ck1 STREQUAL ck4)
  message(FATAL_ERROR "checkpoint bytes differ between 1 and 4 shards")
endif()
if(NOT ck1 STREQUAL ck2)
  message(FATAL_ERROR "checkpoint bytes differ between 1 and 2 shards")
endif()

# A truncated checkpoint must be rejected with a diagnostic, exit 1.
string(LENGTH "${ck1}" ck_len)
math(EXPR half "${ck_len} / 2")
string(SUBSTRING "${ck1}" 0 ${half} torn)
file(WRITE ${dir}/torn.json "${torn}")
execute_process(COMMAND ${DQCTL} serve ${stream} --restore ${dir}/torn.json
                        --out ${dir}/never.ndjson
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "restore of a truncated checkpoint succeeded")
endif()
if(NOT err MATCHES "checkpoint")
  message(FATAL_ERROR "truncated-checkpoint diagnostic missing: ${err}")
endif()

# Keep ${dir} (checkpoint.json is a CI artifact); drop the bulky
# decision streams.
file(REMOVE ${dir}/full.ndjson ${dir}/prefix.ndjson ${dir}/resume.ndjson
            ${dir}/ignore.ndjson)
