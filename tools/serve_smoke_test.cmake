# `dqctl serve` end-to-end smoke: synthesize a department trace, replay
# it through the streaming service at 1 and 4 shards, and require the
# merged decision NDJSON (including the summary line) to be
# byte-identical — the determinism contract of docs/SERVE.md. Then
# exercise the graceful-shutdown path: --stop-after N must produce
# exactly the decision prefix of an uninterrupted run.
set(dir ${CMAKE_CURRENT_BINARY_DIR}/serve-smoke)
file(MAKE_DIRECTORY ${dir})
set(trace ${dir}/trace.csv)
set(census --normal 40 --servers 2 --p2p 2 --blaster 4 --welchia 4)

execute_process(COMMAND ${DQCTL} trace ${census} --duration 600
                        --out ${trace}
                RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dqctl trace failed: ${rc}")
endif()

foreach(shards 1 4)
  execute_process(COMMAND ${DQCTL} serve --trace ${trace} ${census}
                          --shards ${shards} --failure-ratio 0.7
                          --min-attempts 3
                          --out ${dir}/decisions-${shards}.ndjson
                          --metrics-out ${dir}/metrics-${shards}.json
                  RESULT_VARIABLE rc ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "dqctl serve --shards ${shards} failed: ${rc}")
  endif()
endforeach()

file(READ ${dir}/decisions-1.ndjson one)
file(READ ${dir}/decisions-4.ndjson four)
if(NOT one STREQUAL four)
  message(FATAL_ERROR "decision stream differs between 1 and 4 shards")
endif()
string(LENGTH "${one}" bytes)
if(bytes EQUAL 0)
  message(FATAL_ERROR "decision stream is empty")
endif()
if(NOT one MATCHES "\"summary\"")
  message(FATAL_ERROR "decision stream is missing the summary line")
endif()

# Metrics snapshots were written and parse as JSON-ish content.
file(READ ${dir}/metrics-4.json metrics)
if(NOT metrics MATCHES "serve.flows_ingested")
  message(FATAL_ERROR "metrics snapshot missing serve counters")
endif()

# Graceful shutdown: SIGTERM after 200 flows == the 200-flow prefix.
execute_process(COMMAND ${DQCTL} serve --trace ${trace} ${census}
                        --shards 4 --failure-ratio 0.7 --min-attempts 3
                        --stop-after 200
                        --out ${dir}/interrupted.ndjson
                RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dqctl serve --stop-after failed: ${rc}")
endif()
file(STRINGS ${dir}/interrupted.ndjson interrupted_lines)
list(LENGTH interrupted_lines n)
if(NOT n EQUAL 201)  # 200 decisions + summary line
  message(FATAL_ERROR "interrupted run wrote ${n} lines, expected 201")
endif()
file(READ ${dir}/interrupted.ndjson interrupted)
if(NOT interrupted MATCHES "\"interrupted\":true")
  message(FATAL_ERROR "interrupted summary not flagged")
endif()
# Its decision lines are a byte-prefix of the uninterrupted stream.
string(FIND "${interrupted}" "{\"summary\"" cut)
string(SUBSTRING "${interrupted}" 0 ${cut} prefix)
string(LENGTH "${prefix}" prefix_len)
string(SUBSTRING "${four}" 0 ${prefix_len} full_prefix)
if(NOT prefix STREQUAL full_prefix)
  message(FATAL_ERROR "interrupted decisions are not a prefix of the "
                      "uninterrupted stream")
endif()

file(REMOVE_RECURSE ${dir})
